"""Figure 5(b): tile area / cycle-time / net-speedup estimates.

The paper synthesizes, places, and routes the RTL tile with a Synopsys
flow and reports: accelerator area overhead ~4% (0.02 mm2), cycle time
up ~5%, and a net execution-time speedup of 2.74x for the accelerated
matrix-vector kernel.  We regenerate the table with the analytic EDA
estimator (the documented substitution) plus RTL-tile cycle counts.
"""

import pytest

from common import format_table, write_result
from repro.accel import (
    DotProductRTL,
    MemArbiter,
    XcelMsg,
    mvmult_data,
    mvmult_unrolled,
    mvmult_xcel,
    run_tile,
)
from repro.eda import estimate
from repro.mem import CacheRTL, MemMsg
from repro.proc import ProcRTL, assemble

ROWS, COLS = 4, 16


def test_eda_tile_metrics(benchmark):
    reports = {}
    cycle_counts = {}

    def run_all():
        mem_msg = MemMsg()
        reports["proc"] = estimate(ProcRTL().elaborate())
        reports["icache"] = estimate(
            CacheRTL(mem_msg, MemMsg(), 64).elaborate())
        reports["dcache"] = estimate(
            CacheRTL(MemMsg(), MemMsg(), 64).elaborate())
        reports["accel"] = estimate(
            DotProductRTL(MemMsg(), XcelMsg()).elaborate())
        reports["arbiter"] = estimate(MemArbiter(MemMsg()).elaborate())

        data, _ = mvmult_data(ROWS, COLS)
        _, cycle_counts["unrolled"] = run_tile(
            ("rtl", "rtl", "rtl"), assemble(mvmult_unrolled(ROWS, COLS)),
            data, jit=True, max_cycles=5_000_000)
        _, cycle_counts["xcel"] = run_tile(
            ("rtl", "rtl", "rtl"), assemble(mvmult_xcel(ROWS, COLS)),
            data, jit=True, max_cycles=5_000_000)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    base_parts = ["proc", "icache", "dcache"]
    area_base = sum(reports[p].area_ge for p in base_parts)
    area_accel = reports["accel"].area_ge + reports["arbiter"].area_ge
    area_total = area_base + area_accel
    area_overhead = area_accel / area_total

    tcyc_base = max(reports[p].critical_path_levels for p in base_parts)
    tcyc_with = max(tcyc_base, reports["accel"].critical_path_levels,
                    reports["arbiter"].critical_path_levels)
    cycle_time_impact = tcyc_with / tcyc_base - 1.0

    cycle_speedup = cycle_counts["unrolled"] / cycle_counts["xcel"]
    net_speedup = cycle_speedup * tcyc_base / tcyc_with

    rows = [
        ["tile area (no accel)", f"{area_base:.0f} GE",
         f"{area_base * 0.8 / 1e6:.4f} mm2"],
        ["accelerator + arbiter", f"{area_accel:.0f} GE",
         f"{area_accel * 0.8 / 1e6:.4f} mm2"],
        ["area overhead", f"{area_overhead * 100:.1f}%",
         "(paper: ~4%)"],
        ["cycle time impact", f"{cycle_time_impact * 100:.1f}%",
         "(paper: ~5%)"],
        ["cycle-count speedup", f"{cycle_speedup:.2f}x",
         f"(mvmult {ROWS}x{COLS})"],
        ["net execution speedup", f"{net_speedup:.2f}x",
         "(paper: 2.74x)"],
    ]
    text = format_table(
        "Figure 5(b): RTL tile EDA estimates (analytic substitution "
        "for the Synopsys flow)",
        ["metric", "value", "note"],
        rows,
    )
    write_result("fig5b_eda_tile.txt", text)

    # Shape: accelerator is a small fraction of tile area, and the
    # accelerated kernel nets out faster despite any timing impact.
    assert area_overhead < 0.20
    assert net_speedup > 1.0


def test_eda_area_breakdown(benchmark):
    """Per-class area breakdown of the full RTL tile components."""
    rows = []

    def run():
        for name, model in [
            ("ProcRTL", ProcRTL()),
            ("CacheRTL(64)", CacheRTL(MemMsg(), MemMsg(), 64)),
            ("DotProductRTL", DotProductRTL(MemMsg(), XcelMsg())),
            ("MemArbiter", MemArbiter(MemMsg())),
        ]:
            report = estimate(model.elaborate())
            rows.append([
                name,
                f"{report.area_ge:.0f}",
                f"{report.critical_path_levels:.0f}",
                f"{report.cycle_time_ps:.0f}",
                f"{report.energy_per_cycle_pj:.2f}",
            ])

    benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        "Tile component EDA estimates",
        ["component", "area (GE)", "crit path (levels)",
         "cycle time (ps)", "energy (pJ/cyc)"],
        rows,
    )
    write_result("eda_breakdown.txt", text)
