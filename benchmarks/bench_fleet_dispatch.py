"""Fleet dispatch overhead: supervised per-task assignment vs inline.

Not a paper figure — quantifies the cost of the fault-tolerant
supervisor rebuilt in :mod:`repro.fleet.runner`.  The old dispatch was
``Pool.imap_unordered`` with chunked work stealing; the supervisor
assigns one task at a time over per-worker pipes so it always knows
exactly which task is in flight on which worker (that bookkeeping is
what buys crash detection, deadlines, and retry).  This benchmark
measures what that costs on the worst case for dispatch: a campaign
of many near-zero-work tasks, where per-assignment overhead dominates.

Reported: tasks/second inline (no processes at all), and through the
supervisor at 1-per-CPU workers; plus the per-task dispatch overhead
in milliseconds, and the same campaign with chaos enabled (one
injected worker kill) to price a full detect-respawn-retry cycle.

Two properties are asserted:

- the report bytes are identical inline, supervised, and under chaos
  (the fleet's core contract, now including the recovery paths);
- supervised per-task overhead stays under 250 ms (generous: CI
  containers fork slowly; the point is catching pathological
  regressions like a busy-wait in the supervisor loop).

``BENCH_QUICK=1`` shrinks the task count for CI smoke.  Results land
in ``benchmarks/results/BENCH_fleet_dispatch.json``.
"""

import os
import time

from common import format_table, write_json_result
from repro.fleet import (
    Campaign,
    CampaignTask,
    ChaosEvent,
    ChaosPlan,
    RetryPolicy,
    run_campaign,
)
from repro.fleet.runner import default_nworkers

QUICK = os.environ.get("BENCH_QUICK", "0").strip().lower() not in (
    "", "0", "false", "no")

NTASKS = 8 if QUICK else 32
SEED = 7


class NullTask(CampaignTask):
    """Near-zero work: a handful of RNG draws.  All that is measured
    is the dispatch machinery around it."""

    kind = "null"

    def run(self, rng, ctx):
        draws = [rng.randint(0, 999) for _ in range(8)]
        return ({"sum": sum(draws)},
                {"null": {f"bin{draws[0] % 2}": 1}},
                {"counters": {"null.runs": 1}, "histograms": {}})


def _campaign():
    return Campaign("dispatch-null", SEED,
                    [NullTask(f"null/{i}") for i in range(NTASKS)])


def _timed(label, **kwargs):
    start = time.perf_counter()
    res = run_campaign(_campaign(), **kwargs)
    elapsed = time.perf_counter() - start
    return {
        "config": label,
        "elapsed_s": round(elapsed, 3),
        "tasks_per_s": round(NTASKS / elapsed, 1),
        "per_task_ms": round(1000.0 * elapsed / NTASKS, 2),
        "retries": res.stats["retries"],
        "respawns": res.stats["respawns"],
    }, res


def test_fleet_dispatch_overhead():
    nworkers = max(2, min(4, default_nworkers()))

    inline_row, inline_res = _timed("inline", nworkers=1)
    sup_row, sup_res = _timed(f"supervised x{nworkers}",
                              nworkers=nworkers)

    plan = ChaosPlan([ChaosEvent(task=None, index=NTASKS // 2,
                                 mode="kill")]).resolve(_campaign())
    plan.install()
    try:
        chaos_row, chaos_res = _timed(
            f"chaos kill x{nworkers}", nworkers=nworkers,
            retry=RetryPolicy(max_attempts=3, base_delay=0.01))
    finally:
        ChaosPlan.uninstall()

    rows = [inline_row, sup_row, chaos_row]

    # Core contract: dispatch strategy and recovery paths are
    # invisible in the report bytes.
    baseline = inline_res.report_json()
    assert sup_res.report_json() == baseline
    assert chaos_res.report_json() == baseline
    assert chaos_row["retries"] >= 1

    print()
    print(format_table(
        f"fleet dispatch overhead: {NTASKS} null tasks "
        f"(host_cpus={default_nworkers()})",
        ["config", "elapsed_s", "tasks/s", "per-task ms",
         "retries", "respawns"],
        [[r["config"], r["elapsed_s"], r["tasks_per_s"],
          r["per_task_ms"], r["retries"], r["respawns"]]
         for r in rows]))
    write_json_result(
        "fleet_dispatch", rows, host_cpus=default_nworkers(),
        ntasks=NTASKS, nworkers=nworkers, quick=QUICK)

    assert sup_row["per_task_ms"] < 250.0, \
        f"supervised dispatch {sup_row['per_task_ms']}ms/task"


if __name__ == "__main__":
    test_fleet_dispatch_overhead()
