"""Design-space exploration: cache geometry (Section III-C style).

Another study of the kind the framework is built for: sweep the data
cache's size and associativity in the CL tile and measure the miss
rate and end-to-end cycle count of the scalar matrix-vector kernel.

Expected shape: more lines -> fewer misses; at equal capacity, 2-way
associativity removes conflict misses the direct-mapped cache suffers
when matrix rows and the vector collide in the same sets.
"""

import pytest

from common import format_table, write_result
from repro.accel import mvmult_data, mvmult_scalar, run_tile
from repro.accel.tile import Tile
from repro.core import SimulationTool
from repro.proc import assemble

ROWS, COLS = 4, 16


def _run(nlines, assoc):
    words = assemble(mvmult_scalar(ROWS, COLS))
    data, expected = mvmult_data(ROWS, COLS)
    tile = Tile(("cl", "cl", "cl"), cache_nlines=nlines,
                cache_assoc=assoc).elaborate()
    tile.mem.load(0, words)
    for addr, value in data.items():
        tile.mem.write_word(addr, value)
    sim = SimulationTool(tile)
    sim.reset()
    while not int(tile.proc.done):
        sim.cycle()
        assert sim.ncycles < 3_000_000
    return sim.ncycles, tile.dcache.miss_rate()


def test_cache_design_space(benchmark):
    points = [(4, 1), (4, 2), (8, 1), (8, 2), (16, 1), (32, 1)]
    measured = {}

    def sweep():
        for nlines, assoc in points:
            measured[(nlines, assoc)] = _run(nlines, assoc)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for nlines, assoc in points:
        ncycles, miss_rate = measured[(nlines, assoc)]
        rows.append([
            f"{nlines} lines / {assoc}-way",
            f"{nlines * 16}B",
            f"{miss_rate * 100:.1f}%",
            ncycles,
        ])
    text = format_table(
        f"Design space: D$ geometry, CL tile, scalar mvmult "
        f"{ROWS}x{COLS}",
        ["geometry", "capacity", "miss rate", "cycles"],
        rows,
    )
    write_result("design_space_cache.txt", text)

    # Shapes: bigger caches miss less; at fixed capacity,
    # associativity never hurts this workload.
    assert measured[(32, 1)][1] <= measured[(4, 1)][1]
    assert measured[(4, 2)][1] <= measured[(4, 1)][1] + 0.02
    assert measured[(32, 1)][0] <= measured[(4, 1)][0]
