"""Static-schedule speedup: cycles/sec, event vs static scheduling.

The static scheduler (``SimulationTool(model, sched="static")``)
replaces the event-driven settle loop with one levelized sweep and
activity-gates pure RTL tick blocks, so a design pays only for the
logic that actually toggles.  This bench measures interpreted
cycles/sec in both modes on three designs with realistic activity
profiles:

- ``mesh``    — 8x8 RTL mesh under uniform-random traffic in the
  zero-load regime (and one loaded point for contrast): most routers
  are idle on any cycle, the classic NoC operating point.
- ``cache``   — a 32-bank :class:`BankedCacheRTL` serving one blocking
  requester: one bank active at a time, the rest idle.
- ``accel``   — the RTL accelerator tile running the mvmult xcel
  kernel to completion: always busy, and partially event-scheduled
  (the processor's val/rdy handshake is a genuine comb SCC), so it
  bounds the speedup from below.

Wall time uses ``time.process_time()`` (best of N) — the interpreted
runs are seconds long and CPU-bound, so process time is the stable
metric on shared machines.  Every mode pair is checked for identical
architectural results before its timing is reported.

``BENCH_QUICK=1`` shrinks every design/workload for CI smoke runs.

Results land in ``benchmarks/results/BENCH_sched.json``.
"""

import os
import random
import time

from common import format_table, write_json_result, write_result
from repro import SimulationTool
from repro.accel import mvmult_data, mvmult_xcel
from repro.accel.kernels import Y_BASE
from repro.accel.tile import Tile
from repro.mem import BankedCacheRTL, MemReqMsg
from repro.net import MeshNetworkStructural, RouterRTL
from repro.proc import assemble

QUICK = os.environ.get("BENCH_QUICK", "0").strip().lower() not in (
    "", "0", "false", "no")
REPS = 2 if QUICK else 6

MESH_NROUTERS = 16 if QUICK else 64
MESH_NCYCLES = 200 if QUICK else 600
MESH_RATES = (0.02,) if QUICK else (0.01, 0.08)

CACHE_NBANKS = 8 if QUICK else 32
CACHE_NTRANS = 100 if QUICK else 400

ACCEL_ROWS, ACCEL_COLS = (4, 16) if QUICK else (8, 32)


# -- mesh ---------------------------------------------------------------------------


def _mesh_workload(nterminals, rate, ncycles, seed=0):
    """Precomputed injection schedule: (port, dest) events per cycle.

    Keeping the Bernoulli draws out of the timed loop means the
    measurement is the simulator, not the test bench."""
    rng = random.Random(seed)
    return [
        [(i, rng.randrange(nterminals)) for i in range(nterminals)
         if rng.random() < rate]
        for _ in range(ncycles)
    ]


def _run_mesh(sched, nrouters, workload):
    net = MeshNetworkStructural(RouterRTL, nrouters, 256, 32, 2).elaborate()
    sim = SimulationTool(net, sched=sched)
    sim.reset()
    mt = net.msg_type
    dest_shift = mt.field_slice("dest")[0]
    src_shift = mt.field_slice("src")[0]
    in_val = [p.val for p in net.in_]
    in_msg = [p.msg for p in net.in_]
    in_rdy = [p.rdy for p in net.in_]
    out_val = [p.val for p in net.out]
    for p in net.out:
        p.rdy.value = 1
    pending = {}
    ejected = 0
    seq = 0

    def step():
        nonlocal ejected
        accepted = [i for i in pending if in_rdy[i].uint()]
        sim.cycle()
        for i in accepted:
            del pending[i]
            in_val[i].value = 0
        for v in out_val:
            if v.uint():
                ejected += 1

    start = time.process_time()
    for events in workload:
        for (i, dest) in events:
            if i not in pending:
                pending[i] = ((dest << dest_shift) | (i << src_shift)
                              | (seq & 0xFF))
                seq += 1
                in_val[i].value = 1
                in_msg[i].value = pending[i]
        step()
    for _ in range(800):                     # drain in-flight packets
        if not pending and ejected >= seq:
            break
        step()
    elapsed = time.process_time() - start
    return {"cycles": sim.ncycles, "ejected": ejected,
            "injected": seq}, elapsed


def _make_mesh_runner(rate):
    workload = _mesh_workload(MESH_NROUTERS, rate, MESH_NCYCLES)
    return lambda sched: _run_mesh(sched, MESH_NROUTERS, workload)


# -- banked cache -------------------------------------------------------------------


def _cache_workload(ntrans, seed=0):
    rng = random.Random(seed)
    return [
        (k % CACHE_NBANKS, rng.random() < 0.3, rng.randrange(32) * 4,
         k * 13 + 1)
        for k in range(ntrans)
    ]


def _run_cache(sched, workload):
    top = BankedCacheRTL(nbanks=CACHE_NBANKS).elaborate()
    sim = SimulationTool(top, sched=sched)
    sim.reset()
    trace = []
    start = time.process_time()
    for bank, is_write, addr, data in workload:
        enq = top.req_q[bank].enq
        deq = top.resp_q[bank].deq
        req = (MemReqMsg.mk_wr(addr, data) if is_write
               else MemReqMsg.mk_rd(addr))
        enq.msg.value = req
        enq.val.value = 1
        for _ in range(300):
            accepted = enq.rdy.uint()
            sim.cycle()
            if accepted:
                break
        enq.val.value = 0
        deq.rdy.value = 1
        for _ in range(300):
            if deq.val.uint():
                trace.append((bank, deq.msg.uint()))
                sim.cycle()
                break
            sim.cycle()
        deq.rdy.value = 0
    elapsed = time.process_time() - start
    return {"cycles": sim.ncycles, "trace": tuple(trace)}, elapsed


def _make_cache_runner():
    workload = _cache_workload(CACHE_NTRANS)
    return lambda sched: _run_cache(sched, workload)


# -- accelerator tile ---------------------------------------------------------------


def _run_accel(sched, words, data, expected):
    tile = Tile(("rtl", "rtl", "rtl")).elaborate()
    tile.mem.load(0, words)
    for addr, value in data.items():
        tile.mem.write_word(addr, value)
    sim = SimulationTool(tile, sched=sched)
    sim.reset()
    start = time.process_time()
    while not int(tile.proc.done):
        sim.cycle()
        assert sim.ncycles < 2_000_000, "tile did not halt"
    elapsed = time.process_time() - start
    got = [tile.mem.read_word(Y_BASE + 4 * i) for i in range(len(expected))]
    assert got == expected, "accel kernel produced wrong result"
    return {"cycles": sim.ncycles}, elapsed


def _make_accel_runner():
    data, expected = mvmult_data(ACCEL_ROWS, ACCEL_COLS)
    words = assemble(mvmult_xcel(ACCEL_ROWS, ACCEL_COLS))
    return lambda sched: _run_accel(sched, words, data, expected)


# -- driver -------------------------------------------------------------------------


def _compare(design, config, run):
    """Time both modes, check architectural equivalence, return rows.

    Reps are interleaved (static, event, static, event, ...) and the
    minimum per mode is kept, so slow drift on a shared machine hits
    both modes alike instead of biasing whichever ran last."""
    static_dt = event_dt = None
    static_res = event_res = None
    for _ in range(REPS):
        static_res, dt = run("static")
        if static_dt is None or dt < static_dt:
            static_dt = dt
        event_res, dt = run("event")
        if event_dt is None or dt < event_dt:
            event_dt = dt
    assert static_res == event_res, (
        f"{design}: static and event runs diverged: "
        f"{static_res} vs {event_res}"
    )
    cycles = static_res["cycles"]
    entries = []
    for mode, dt in (("static", static_dt), ("event", event_dt)):
        entries.append({
            "design": design,
            "config": config,
            "mode": mode,
            "cycles": cycles,
            "seconds": round(dt, 4),
            "cycles_per_sec": round(cycles / dt, 1) if dt else None,
        })
    speedup = event_dt / static_dt if static_dt else float("inf")
    return entries, speedup


def test_sched_speedup(benchmark):
    entries = []
    speedups = {}

    def run_all():
        for rate in MESH_RATES:
            name = f"mesh{MESH_NROUTERS}@{rate}"
            rows, speedup = _compare("mesh", name, _make_mesh_runner(rate))
            entries.extend(rows)
            speedups[name] = speedup
        rows, speedup = _compare(
            "cache", f"banked x{CACHE_NBANKS}", _make_cache_runner())
        entries.extend(rows)
        speedups["cache"] = speedup
        rows, speedup = _compare(
            "accel", f"tile-rtl mvmult {ACCEL_ROWS}x{ACCEL_COLS}",
            _make_accel_runner())
        entries.extend(rows)
        speedups["accel"] = speedup

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    table_rows = []
    by_key = {(e["design"], e["config"], e["mode"]): e for e in entries}
    for (design, config, mode), entry in sorted(by_key.items()):
        if mode != "static":
            continue
        event = by_key[(design, config, "event")]
        table_rows.append([
            design, config, entry["cycles"],
            f"{event['cycles_per_sec']:.0f}",
            f"{entry['cycles_per_sec']:.0f}",
            f"{entry['cycles_per_sec'] / event['cycles_per_sec']:.2f}x",
        ])
    text = format_table(
        "Static schedule vs event-driven simulation (interpreted)",
        ["design", "config", "cycles", "event cyc/s", "static cyc/s",
         "speedup"],
        table_rows,
    )
    write_result("sched_speedup.txt", text)
    write_json_result("sched", entries, quick=QUICK)


if __name__ == "__main__":
    class _Pedantic:
        def pedantic(self, fn, rounds=1, iterations=1):
            fn()

    test_sched_speedup(_Pedantic())
