"""Differential co-simulation throughput (verification subsystem).

Not a paper figure — quantifies what the :mod:`repro.verif` harness
costs, so its place in the development loop is understood: a cosim run
simulates N implementations in lockstep plus monitors, online diffing,
and coverage.  Reports randomized transactions/s for the cache and
mesh sweeps, the per-DUT cycle rate, and the raw single-simulator
cycle rate on the same design for comparison.
"""

import time

from common import format_table, write_result
from repro.verif import (
    RNG,
    CoSimHarness,
    backpressure_pattern,
    mem_request_strategy,
    net_message_strategy,
)
from repro.verif.duts import CACHE_WINDOW_WORDS, make_cache_dut, make_mesh_dut

N_TXNS = 600


def _cache_harness():
    return CoSimHarness(
        [make_cache_dut("event", "rtl", sched="event"),
         make_cache_dut("static", "rtl", sched="static"),
         make_cache_dut("jit", "rtl", jit=True)],
        compare="cycle_exact")


def _cache_stimulus():
    rng = RNG(1).fork("bench")
    strat = mem_request_strategy(addr_words=CACHE_WINDOW_WORDS)
    return {"req": [strat.sample(rng) for _ in range(N_TXNS)]}


def _mesh_harness():
    return CoSimHarness(
        [make_mesh_dut("event", "rtl", sched="event"),
         make_mesh_dut("static", "rtl", sched="static"),
         make_mesh_dut("jit", "rtl", jit=True)],
        compare="cycle_exact")


def _mesh_stimulus():
    rng = RNG(2)
    from repro.net import NetMsg
    msg_type = NetMsg(4, 256, 16)
    stimulus = {}
    for src in range(4):
        port_rng = rng.fork(f"port{src}")
        strat = net_message_strategy(msg_type, src, 4)
        stimulus[f"in{src}"] = [
            strat.sample(port_rng) for _ in range(N_TXNS // 4)]
    return stimulus


def _timed_run(harness, stimulus):
    start = time.perf_counter()
    res = harness.run(
        stimulus, backpressure=backpressure_pattern("random", p=0.8,
                                                    seed=3))
    elapsed = time.perf_counter() - start
    return (res.ntransactions() / elapsed,
            sum(res.ncycles.values()) / elapsed)


def _raw_cycle_rate(adapter, ncycles=2000):
    adapter.sim.reset()
    start = time.perf_counter()
    adapter.sim.run(ncycles)
    return ncycles / (time.perf_counter() - start)


def test_bench_verif_cosim_throughput(benchmark):
    results = {}

    def run():
        results["cache"] = _timed_run(_cache_harness(), _cache_stimulus())
        results["mesh"] = _timed_run(_mesh_harness(), _mesh_stimulus())
        results["cache_raw"] = _raw_cycle_rate(
            make_cache_dut("raw", "rtl", sched="static"))
        results["mesh_raw"] = _raw_cycle_rate(
            make_mesh_dut("raw", "rtl", sched="static"))

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for design in ("cache", "mesh"):
        txn_rate, cyc_rate = results[design]
        raw = results[f"{design}_raw"]
        rows.append([
            design, f"{txn_rate:.0f}", f"{cyc_rate:.0f}",
            f"{raw:.0f}", f"{raw / (cyc_rate / 3):.1f}x",
        ])
    text = format_table(
        "Differential co-simulation throughput "
        "(3 substrates, cycle-exact, random backpressure)",
        ["design", "txns/s", "cosim cycles/s (all DUTs)",
         "raw cycles/s (1 sim)", "harness overhead"],
        rows)
    write_result("verif_throughput.txt", text)

    # Sanity floor: the harness must stay usable for 1000-txn sweeps.
    assert results["cache"][0] > 50
    assert results["mesh"][0] > 50
