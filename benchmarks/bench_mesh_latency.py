"""Section III-D claims: 8x8 CL mesh latency characteristics.

The paper's CL mesh simulations estimate a zero-load latency of 13
cycles and saturation at ~32% injection for the 8x8 mesh with
XY-dimension-ordered routing and elastic-buffer flow control.

We regenerate the latency-vs-injection-rate curve.  SimJIT-CL runs the
sweep (it is cycle-exact with the interpreted model, which the test
suite verifies), keeping the benchmark fast.
"""

import pytest

from common import build_jit_network, build_network, format_table, write_result
from repro.net import (
    NetworkTrafficHarness,
    find_saturation_point,
    measure_zero_load_latency,
)

NROUTERS = 64
RATES = [0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45]
NCYCLES = 1500
WARMUP = 300


def test_mesh_zero_load_and_saturation(benchmark):
    results = {}

    def run_sweep():
        wrapper, _ = build_jit_network("cl", NROUTERS)
        results["zero_load"] = measure_zero_load_latency(
            wrapper, npairs=30)
        sweep = []
        for rate in RATES:
            net, _ = build_jit_network("cl", NROUTERS)
            stats = NetworkTrafficHarness(net, seed=3).run_uniform_random(
                rate, NCYCLES, warmup=WARMUP)
            sweep.append((rate, stats.avg_latency, stats.throughput))
        results["sweep"] = sweep

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    zero_load = results["zero_load"]
    sweep = results["sweep"]
    saturation = find_saturation_point(sweep, zero_load)

    rows = [[f"{rate:.2f}", f"{lat:.1f}", f"{thr:.3f}"]
            for rate, lat, thr in sweep]
    text = "\n\n".join([
        format_table(
            "Section III-D: 8x8 CL mesh latency vs injection rate",
            ["inj rate", "avg latency (cyc)", "throughput (pkt/term/cyc)"],
            rows,
        ),
        f"zero-load latency : {zero_load:.1f} cycles (paper: 13)",
        f"saturation point  : {saturation} injection rate (paper: ~0.32)",
    ])
    write_result("mesh_latency.txt", text)

    # Shape checks: zero-load latency in single-digit-to-teens range,
    # latency rising monotonically-ish with load, saturation near the
    # paper's 32%.
    assert 4 <= zero_load <= 25
    assert sweep[-1][1] > 2 * sweep[0][1]
    assert saturation is not None
    assert 0.15 <= saturation <= 0.50


def test_fl_network_has_lower_latency_than_cl(benchmark):
    """The FL network (ideal crossbar) must beat the CL mesh — the
    fidelity/detail tradeoff the multi-level methodology exploits."""
    latencies = {}

    def run():
        fl = build_network("fl", 16)
        cl, _ = build_jit_network("cl", 16)
        latencies["fl"] = NetworkTrafficHarness(fl, seed=2) \
            .run_uniform_random(0.2, 500, warmup=100).avg_latency
        latencies["cl"] = NetworkTrafficHarness(cl, seed=2) \
            .run_uniform_random(0.2, 500, warmup=100).avg_latency

    benchmark.pedantic(run, rounds=1, iterations=1)
    assert latencies["fl"] < latencies["cl"]
