"""Shared infrastructure for the paper-reproduction benchmarks.

Provides:

- mesh builders at FL/CL/RTL detail (interpreted or SimJIT-compiled);
- an all-in-C uniform-random traffic driver generated alongside the
  SimJIT model — the "efficiency-level-language reference" role played
  in the paper by hand-written C++ / verilated simulators (DESIGN.md
  documents this substitution);
- result-table helpers that print the rows each figure reports and
  persist them under ``benchmarks/results/``.
"""

from __future__ import annotations

import os
import sys
import time

from repro.core.simjit import SimJITCL, SimJITRTL
from repro.net import (
    MeshNetworkStructural,
    NetMsg,
    NetworkFL,
    NetworkTrafficHarness,
    RouterCL,
    RouterRTL,
)

NMSGS = 256
DATA_NBITS = 32
NENTRIES = 2

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def build_network(level, nrouters):
    """Fresh elaborated network model at the requested level."""
    if level == "fl":
        return NetworkFL(nrouters, NMSGS, DATA_NBITS, NENTRIES).elaborate()
    router = RouterCL if level == "cl" else RouterRTL
    return MeshNetworkStructural(
        router, nrouters, NMSGS, DATA_NBITS, NENTRIES
    ).elaborate()


def specializer_for(level):
    return SimJITCL if level == "cl" else SimJITRTL


def build_jit_network(level, nrouters, extra_c="", extra_cdef="",
                      cache=True):
    """SimJIT-specialized mesh; returns (wrapper_model, specializer)."""
    net = build_network(level, nrouters)
    spec = specializer_for(level)(
        net, extra_c=extra_c, extra_cdef=extra_cdef, cache=cache)
    wrapper = spec.specialize().elaborate()
    return wrapper, spec


# -- all-C traffic driver ----------------------------------------------------------

_DRIVER_CDEF = """
void run_traffic(void *p, int ncycles, int rate_milli, unsigned seed,
                 int64_t *stats);
"""

_DRIVER_TEMPLATE = r"""
/* ---- generated all-C uniform-random traffic driver ---- */

#define NTERM %(nterm)d

static const int drv_in_msg[NTERM] = {%(in_msg)s};
static const int drv_in_val[NTERM] = {%(in_val)s};
static const int drv_in_rdy[NTERM] = {%(in_rdy)s};
static const int drv_out_msg[NTERM] = {%(out_msg)s};
static const int drv_out_val[NTERM] = {%(out_val)s};
static const int drv_out_rdy[NTERM] = {%(out_rdy)s};

void run_traffic(void *p, int ncycles, int rate_milli, unsigned seed,
                 int64_t *stats) {
    inst_t *I = (inst_t *)p;
    unsigned lcg = seed * 2654435761u + 1u;
    int64_t injected = 0, ejected = 0, lat_sum = 0, lat_n = 0;
    long long pending[NTERM];
    int have[NTERM];
    for (int i = 0; i < NTERM; i++) { have[i] = 0; pending[i] = 0; }
    for (int i = 0; i < NTERM; i++)
        I->cur[drv_out_rdy[i]] = 1;

    unsigned seq = 0;
    for (int cyc = 0; cyc < ncycles; cyc++) {
        for (int i = 0; i < NTERM; i++) {
            if (!have[i]) {
                lcg = lcg * 1664525u + 1013904223u;
                if ((lcg >> 8) %% 1000 < (unsigned)rate_milli) {
                    lcg = lcg * 1664525u + 1013904223u;
                    unsigned dest = (lcg >> 8) %% NTERM;
                    long long ts = cyc + 1;
                    long long msg =
                        ((long long)dest << %(dest_shift)d) |
                        ((long long)i << %(src_shift)d) |
                        ((long long)(seq++ %% %(nmsgs)d)
                         << %(seq_shift)d) |
                        (ts & 0xFFFFFFFFLL);
                    pending[i] = msg;
                    have[i] = 1;
                    injected++;
                }
            }
            if (have[i]) {
                I->cur[drv_in_msg[i]] = (u128)pending[i];
                I->cur[drv_in_val[i]] = 1;
            } else {
                I->cur[drv_in_val[i]] = 0;
            }
        }
        int accepted[NTERM];
        for (int i = 0; i < NTERM; i++)
            accepted[i] = have[i] && (int)I->cur[drv_in_rdy[i]];
        cycle(p, 1);
        for (int i = 0; i < NTERM; i++)
            if (accepted[i]) have[i] = 0;
        for (int i = 0; i < NTERM; i++) {
            if ((int)I->cur[drv_out_val[i]]) {
                long long ts =
                    (long long)(I->cur[drv_out_msg[i]] & 0xFFFFFFFF);
                ejected++;
                if (ts) { lat_sum += (cyc + 1) - ts; lat_n++; }
            }
        }
    }
    stats[0] = injected;
    stats[1] = ejected;
    stats[2] = lat_sum;
    stats[3] = lat_n;
}
"""


def make_traffic_driver_source(net, slot_of):
    """Generate the all-C driver for an elaborated network model."""
    nterm = len(net.in_)
    msg_type = net.msg_type
    dest_lo, _ = msg_type.field_slice("dest")
    src_lo, _ = msg_type.field_slice("src")
    seq_lo, _ = msg_type.field_slice("opaque")

    def slots(ports):
        return ", ".join(str(slot_of(p)) for p in ports)

    return _DRIVER_TEMPLATE % {
        "nterm": nterm,
        "in_msg": slots([b.msg for b in net.in_]),
        "in_val": slots([b.val for b in net.in_]),
        "in_rdy": slots([b.rdy for b in net.in_]),
        "out_msg": slots([b.msg for b in net.out]),
        "out_val": slots([b.val for b in net.out]),
        "out_rdy": slots([b.rdy for b in net.out]),
        "dest_shift": dest_lo,
        "src_shift": src_lo,
        "seq_shift": seq_lo,
        "nmsgs": NMSGS,
    }


def build_c_reference(level, nrouters, cache=True):
    """Compile mesh + all-C driver; returns a callable
    run(ncycles, rate, seed) -> dict of stats, plus the specializer."""
    net = build_network(level, nrouters)
    # Slot mapping must match the specializer's (_all_nets order).
    slot_index = {id(n): i for i, n in enumerate(net._all_nets)}

    def slot_of(sig):
        return slot_index[id(sig._net.find())]

    driver = make_traffic_driver_source(net, slot_of)
    spec = specializer_for(level)(
        net, extra_c=driver, extra_cdef=_DRIVER_CDEF, cache=cache)
    wrapper = spec.specialize()
    engine = wrapper.jit_engine
    import cffi
    ffi = cffi.FFI()
    stats_buf = ffi.new("int64_t[4]")

    def run(ncycles, rate, seed=1):
        engine.lib.run_traffic(
            engine.inst, ncycles, int(rate * 1000), seed, stats_buf)
        injected, ejected, lat_sum, lat_n = list(stats_buf)
        return {
            "injected": injected,
            "ejected": ejected,
            "avg_latency": lat_sum / lat_n if lat_n else float("nan"),
        }

    return run, spec


# -- measurement helpers --------------------------------------------------------------


def time_interp_network(level, nrouters, ncycles, rate=0.25, seed=1):
    net = build_network(level, nrouters)
    harness = NetworkTrafficHarness(net, seed=seed)
    start = time.perf_counter()
    harness.run_uniform_random(rate, ncycles, drain=0)
    return time.perf_counter() - start


def time_jit_network(level, nrouters, ncycles, rate=0.25, seed=1,
                     include_overheads=False):
    start_total = time.perf_counter()
    wrapper, spec = build_jit_network(level, nrouters,
                                      cache=not include_overheads)
    harness = NetworkTrafficHarness(wrapper, seed=seed)
    start_sim = time.perf_counter()
    harness.run_uniform_random(rate, ncycles, drain=0)
    end = time.perf_counter()
    if include_overheads:
        return end - start_total
    return end - start_sim


def time_c_reference(level, nrouters, ncycles, rate=0.25, seed=1):
    run, _ = build_c_reference(level, nrouters)
    start = time.perf_counter()
    run(ncycles, rate, seed)
    return time.perf_counter() - start


# -- paired order-alternating timing harness ------------------------------------------
#
# One shared implementation of the measurement idiom every overhead
# bench uses (and the insight gate consumes): calibrate the rep length
# until one rep clears the timer floor, then time the two workloads in
# alternating order so slow drift in host CPU speed (thermal /
# frequency scaling) hits both equally — the only honest way to
# resolve a small ratio between them.


class PairedTiming:
    """Result of one paired order-alternating measurement.

    Holds the per-rep times for both workloads (same ``ncycles``
    each), exposes best-of rates, the paired slowdown estimate, and
    ``pair_spread`` — the relative spread of the per-rep slowdown
    ratios, i.e. the *observed* noise floor of this measurement.  The
    regression gate (:mod:`repro.insight.gate`) widens its tolerance
    by a multiple of this recorded spread, so noisy hosts gate
    loosely and quiet hosts gate tightly.
    """

    def __init__(self, ncycles, times_a, times_b):
        self.ncycles = ncycles
        self.times_a = list(times_a)
        self.times_b = list(times_b)

    @property
    def best_a(self):
        return min(self.times_a)

    @property
    def best_b(self):
        return min(self.times_b)

    @property
    def cps_a(self):
        return self.ncycles / self.best_a

    @property
    def cps_b(self):
        return self.ncycles / self.best_b

    @property
    def slowdown(self):
        """Best-of paired slowdown of b relative to a."""
        return self.best_b / self.best_a

    @property
    def pair_spread(self):
        """Relative spread of the per-rep b/a ratios: how much the
        slowdown estimate itself wobbled across reps."""
        ratios = [tb / ta for ta, tb in zip(self.times_a, self.times_b)
                  if ta > 0]
        if len(ratios) < 2:
            return 0.0
        low = min(ratios)
        return (max(ratios) - low) / low if low > 0 else 0.0

    def __iter__(self):
        # Legacy tuple shape: (ncycles, cps_a, cps_b).
        return iter((self.ncycles, self.cps_a, self.cps_b))


def calibrate(fn, min_rep_seconds, start_cycles=64):
    """Grow the rep length until one rep runs at least
    ``min_rep_seconds`` — idle-mesh kernel cycles are sub-microsecond,
    far below timer resolution at fixed small N."""
    ncycles = start_cycles
    while True:
        start = time.process_time()
        fn(ncycles)
        elapsed = time.process_time() - start
        if elapsed >= min_rep_seconds:
            return ncycles, elapsed
        ncycles *= 4


def best_of(fn, reps, min_rep_seconds):
    """Best-of-``reps`` rate for a single workload: (ncycles, cyc/s)."""
    ncycles, first = calibrate(fn, min_rep_seconds)
    best = first
    for _ in range(reps - 1):
        start = time.process_time()
        fn(ncycles)
        best = min(best, time.process_time() - start)
    return ncycles, ncycles / best


def best_of_paired(fn_a, fn_b, reps, min_rep_seconds, warmup_b=False):
    """Time two workloads at the same cycle count with alternating
    reps; returns a :class:`PairedTiming`.

    Which workload goes first swaps every rep: under thermal
    throttling the second slot is systematically slower, and the
    alternation cancels that bias out of the ratio.  ``warmup_b``
    runs ``fn_b`` once at the calibrated length before timing starts
    (``fn_a`` is warm from calibration) — for workloads with one-shot
    transients like buffer growth.
    """
    ncycles, _ = calibrate(fn_a, min_rep_seconds)
    if warmup_b:
        fn_b(ncycles)
    times_a, times_b = [], []
    for rep in range(2 * reps):
        first, second = (fn_a, fn_b) if rep % 2 == 0 else (fn_b, fn_a)
        start = time.process_time()
        first(ncycles)
        mid = time.process_time()
        second(ncycles)
        end = time.process_time()
        t_first, t_second = mid - start, end - mid
        t_a, t_b = ((t_first, t_second) if rep % 2 == 0
                    else (t_second, t_first))
        times_a.append(t_a)
        times_b.append(t_b)
    return PairedTiming(ncycles, times_a, times_b)


# -- reporting -----------------------------------------------------------------------


def write_result(name, text):
    """Persist a result table under benchmarks/results/ and print it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print()
    print(text)
    return path


def git_sha():
    """Short commit sha of the working tree, or "unknown"."""
    import subprocess
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(__file__), capture_output=True,
            text=True, timeout=10,
        )
        sha = out.stdout.strip()
        return sha if out.returncode == 0 and sha else "unknown"
    except OSError:
        return "unknown"


def host_fingerprint():
    """Describe the measuring host: cpu budget, arch, interpreter.

    Stamped into every ``repro-bench-v1`` envelope so the regression
    gate can tell a same-host A/B comparison from a cross-machine one
    (absolute rates only transfer within the former).
    """
    import platform
    try:
        cpus = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        cpus = os.cpu_count() or 1
    return {
        "host_cpus": cpus,
        "machine": platform.machine(),
        "platform": sys.platform,
        "python": platform.python_version(),
    }


def write_json_result(name, results, **extra):
    """Persist machine-readable benchmark output as ``BENCH_<name>.json``.

    ``results`` is a list of measurement dicts (design, mode,
    cycles_per_sec, ...).  The ``repro-bench-v1`` envelope stamps the
    schema id, the git sha, and the host fingerprint so numbers stay
    attributable — and gateable (:mod:`repro.insight.gate`) — after
    the fact.
    """
    import json
    payload = {
        "schema": "repro-bench-v1",
        "bench": name,
        "git_sha": git_sha(),
        "host": host_fingerprint(),
        "results": results,
    }
    payload.update(extra)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"BENCH_{name}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\n[json] {path}")
    return path


def format_table(title, headers, rows):
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows
        else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        lines.append(
            "  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
