"""Benchmark-suite configuration.

The benchmarks regenerate every table and figure of the paper's
evaluation (see DESIGN.md Section 2).  Each bench prints the rows the
paper reports and writes them under ``benchmarks/results/``.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import sys
from pathlib import Path

# Make `import common` work regardless of invocation directory.
sys.path.insert(0, str(Path(__file__).parent))
