"""Figure 13: simulator performance versus level of detail.

The paper composes FL/CL/RTL implementations of the processor, cache,
and accelerator into 27 <P, C, A> tile configurations, runs a
matrix-vector-multiply kernel on each, and plots simulation
performance (normalized to a bare ISA simulator under PyPy) against a
level-of-detail score LOD = p + c + a (FL=1, CL=2, RTL=3), with and
without JIT specialization.

Our reproduction: the baseline is the bare :class:`IsaSim` under
CPython (PyPy is unavailable offline), and SimJIT-RTL specialization is
applied to every RTL component in the JIT runs (FL/CL components stay
interpreted — the paper likewise specialized only a subset of CL
components in this experiment).

Expected shape: performance trends *down* as LOD rises; a visible gap
separates the bare ISA simulator from the port-based <FL,FL,FL> tile
(the cost of modular modeling); specialization shifts detailed
configurations up, with the all-RTL tile recovering dramatically
because every component runs compiled.
"""

import itertools
import time

import pytest

from common import format_table, write_result
from repro.accel import mvmult_data, mvmult_xcel, run_tile
from repro.proc import IsaSim, assemble

ROWS, COLS = 4, 8
LEVELS = ("fl", "cl", "rtl")
ALL_CONFIGS = list(itertools.product(LEVELS, repeat=3))
LOD = {"fl": 1, "cl": 2, "rtl": 3}


def _workload():
    words = assemble(mvmult_xcel(ROWS, COLS))
    data, expected = mvmult_data(ROWS, COLS)
    return words, data, expected


def _isa_baseline_time(words, data, repeats=50):
    start = time.perf_counter()
    for _ in range(repeats):
        sim = IsaSim()
        sim.load_program(words)
        for addr, value in data.items():
            sim.write_mem(addr, value)
        sim.run()
    return (time.perf_counter() - start) / repeats


def _tile_time(levels, words, data, jit):
    """Simulation-loop time only: construction/specialization happens
    before the clock starts (the paper's Figure 13 likewise measures
    simulation time, with SimJIT-RTL caching enabled)."""
    from repro.accel.tile import Tile
    from repro.core import SimulationTool

    tile = Tile(levels, jit=jit).elaborate()
    tile.mem.load(0, words)
    for addr, value in data.items():
        tile.mem.write_word(addr, value)
    sim = SimulationTool(tile)
    start = time.perf_counter()
    sim.reset()
    while not int(tile.proc.done):
        sim.cycle()
        if sim.ncycles > 2_000_000:
            raise AssertionError(f"tile {levels} did not halt")
    return time.perf_counter() - start, sim.ncycles


def test_fig13_lod_sweep(benchmark):
    words, data, expected = _workload()
    results = {}

    def sweep():
        results["isa"] = _isa_baseline_time(words, data)
        for levels in ALL_CONFIGS:
            results[(levels, False)] = _tile_time(levels, words, data,
                                                  jit=False)
        # Warm the SimJIT cache, then measure JIT runs.
        for levels in ALL_CONFIGS:
            if "rtl" in levels:
                results[(levels, True)] = _tile_time(levels, words,
                                                     data, jit=True)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    isa_time = results["isa"]
    rows = []
    for levels in sorted(ALL_CONFIGS, key=lambda c: sum(LOD[x] for x in c)):
        lod = sum(LOD[x] for x in levels)
        interp_time, ncycles = results[(levels, False)]
        interp_perf = isa_time / interp_time
        if (levels, True) in results:
            jit_time, jit_cycles = results[(levels, True)]
            assert jit_cycles == ncycles, (levels, jit_cycles, ncycles)
            jit_perf = isa_time / jit_time
            jit_cell = f"{jit_perf:.4f}"
        else:
            jit_cell = "-"
        rows.append([
            "<" + ",".join(x.upper() for x in levels) + ">",
            lod, ncycles,
            f"{interp_time:.2f}s",
            f"{interp_perf:.4f}",
            jit_cell,
        ])
    text = format_table(
        "Figure 13: tile simulator performance vs level of detail "
        f"(mvmult {ROWS}x{COLS}; performance normalized to bare "
        f"IsaSim = 1.0, baseline {results['isa'] * 1e3:.2f} ms)",
        ["config", "LOD", "cycles", "interp time", "interp perf",
         "simjit perf"],
        rows,
    )
    write_result("fig13_lod.txt", text)

    # Shape 1: the all-FL tile is far slower than the bare ISA sim
    # (the paper's "cost of modular modeling" gap).
    fl_time, _ = results[(("fl", "fl", "fl"), False)]
    assert fl_time > 3 * isa_time

    # Shape 2: the all-RTL tile is the slowest interpreted config
    # among the corner cases.
    rtl_time, _ = results[(("rtl", "rtl", "rtl"), False)]
    assert rtl_time > fl_time

    # Shape 3: specialization makes the all-RTL tile dramatically
    # faster than its interpreted self.
    rtl_jit_time, _ = results[(("rtl", "rtl", "rtl"), True)]
    assert rtl_jit_time < rtl_time


def test_fig13_all_configs_agree(benchmark):
    """Every configuration must compute the same answer — the paper's
    premise that levels are interchangeable."""
    from repro.accel.kernels import Y_BASE
    words, data, expected = _workload()
    outputs = {}

    def run_corners():
        for levels in [("fl", "fl", "fl"), ("cl", "cl", "cl"),
                       ("rtl", "rtl", "rtl"), ("fl", "cl", "rtl")]:
            tile, _ = run_tile(levels, words, data, jit=False)
            outputs[levels] = [
                tile.mem.read_word(Y_BASE + 4 * i) for i in range(ROWS)
            ]

    benchmark.pedantic(run_corners, rounds=1, iterations=1)
    for levels, got in outputs.items():
        assert got == expected, levels
