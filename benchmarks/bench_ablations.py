"""Ablations of the framework's design choices (DESIGN.md §4).

Not a paper figure — these quantify the implementation decisions the
reproduction made, so downstream users can see what each buys:

1. **Static comb scheduling** (SimJIT): topologically ordering the
   combinational blocks vs. relying on the fixpoint loop alone.
2. **gcc optimization level**: compile-time vs simulation-speed
   tradeoff (-O0 / -O1 / -O2), the knob the paper discusses for
   Verilator (-O1 "relatively fast").
3. **Sensitivity-list inference** (interpreter): AST-inferred lists vs
   the conservative everything-triggers fallback.
"""

import time

import pytest

from common import build_network, format_table, specializer_for, write_result
from repro.net import NetworkTrafficHarness

NROUTERS = 16
NCYCLES = 3000


def _jit_throughput(schedule=True, opt="-O2"):
    net = build_network("rtl", NROUTERS)
    spec = specializer_for("rtl")(net, opt=opt, schedule=schedule,
                                  cache=False)
    wrapper = spec.specialize().elaborate()
    harness = NetworkTrafficHarness(wrapper, seed=1)
    start = time.perf_counter()
    harness.run_uniform_random(0.25, NCYCLES, drain=0)
    rate = NCYCLES / (time.perf_counter() - start)
    return rate, spec.overheads["comp"]


def test_ablation_static_scheduling(benchmark):
    results = {}

    def run():
        results["scheduled"], _ = _jit_throughput(schedule=True)
        results["unscheduled"], _ = _jit_throughput(schedule=False)

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["topological order", f"{results['scheduled']:.0f}"],
        ["declaration order (fixpoint only)",
         f"{results['unscheduled']:.0f}"],
    ]
    text = format_table(
        "Ablation: static comb scheduling (16-node RTL mesh, SimJIT)",
        ["comb ordering", "cycles/s"], rows)
    write_result("ablation_scheduling.txt", text)
    # Both must be correct; scheduling should not hurt.
    assert results["scheduled"] >= 0.7 * results["unscheduled"]


def test_ablation_gcc_opt_level(benchmark):
    results = {}

    def run():
        for opt in ("-O0", "-O1", "-O2"):
            results[opt] = _jit_throughput(opt=opt)

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [opt, f"{rate:.0f}", f"{comp:.2f}s"]
        for opt, (rate, comp) in results.items()
    ]
    text = format_table(
        "Ablation: gcc optimization level (16-node RTL mesh, SimJIT)",
        ["opt", "cycles/s", "compile time"], rows)
    write_result("ablation_gcc_opt.txt", text)
    # -O0 must compile faster; higher opts must not simulate slower by
    # a large margin (wrapped harness caps the visible difference).
    assert results["-O0"][1] < results["-O2"][1] * 1.5


def test_ablation_sensitivity_inference(benchmark):
    """Replace every comb block's inferred sensitivity list with the
    conservative fallback (all inports + wires of its model) and
    measure the interpreted simulator."""
    from repro.core.elaboration import _fallback_sensitivity

    def throughput(conservative):
        net = build_network("rtl", NROUTERS)
        if conservative:
            for sub in net._all_models:
                for blk in sub.get_comb_blocks():
                    blk.signals = _fallback_sensitivity(sub)
        harness = NetworkTrafficHarness(net, seed=1)
        ncycles = 400
        start = time.perf_counter()
        harness.run_uniform_random(0.25, ncycles, drain=0)
        return ncycles / (time.perf_counter() - start)

    results = {}

    def run():
        results["inferred"] = throughput(False)
        results["fallback"] = throughput(True)

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["AST-inferred lists", f"{results['inferred']:.0f}"],
        ["conservative fallback", f"{results['fallback']:.0f}"],
    ]
    text = format_table(
        "Ablation: sensitivity-list inference (16-node RTL mesh, "
        "interpreted)",
        ["sensitivity", "cycles/s"], rows)
    write_result("ablation_sensitivity.txt", text)
    assert results["inferred"] > 0
    assert results["fallback"] > 0
