"""Design-space exploration: network topology (mesh vs ring).

The paper's Section III-D argues the framework makes swapping network
microarchitectures cheap; this bench swaps the *topology*: the same
traffic harness characterizes an NxN mesh and an N^2-terminal
bidirectional ring at equal terminal count.

Expected shape: the ring's average hop count grows linearly with
terminal count while the mesh's grows with its side length, so the
mesh wins on zero-load latency and (via bisection bandwidth) on
saturation throughput at 16+ terminals.
"""

import pytest

from common import DATA_NBITS, NMSGS, NENTRIES, format_table, write_result
from repro.core.simjit import SimJITCL
from repro.net import (
    MeshNetworkStructural,
    NetworkTrafficHarness,
    RingNetworkStructural,
    RouterCL,
    measure_zero_load_latency,
)

NTERMINALS = 16
# Below the ring's saturation: a VC-less ring deadlocks past it (see
# repro/net/ring.py), while the mesh keeps absorbing load.
RATE = 0.10
NCYCLES = 1200


def _mesh():
    net = MeshNetworkStructural(
        RouterCL, NTERMINALS, NMSGS, DATA_NBITS, NENTRIES).elaborate()
    return SimJITCL(net).specialize().elaborate()


def _ring():
    net = RingNetworkStructural(
        NTERMINALS, NMSGS, DATA_NBITS, NENTRIES).elaborate()
    return SimJITCL(net).specialize().elaborate()


def test_topology_comparison(benchmark):
    measured = {}

    def run():
        for name, factory in (("mesh 4x4", _mesh), ("ring 16", _ring)):
            zero_load = measure_zero_load_latency(factory(), npairs=20)
            stats = NetworkTrafficHarness(factory(), seed=5) \
                .run_uniform_random(RATE, NCYCLES, warmup=200)
            measured[name] = (zero_load, stats)

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, (zero_load, stats) in measured.items():
        rows.append([
            name,
            f"{zero_load:.1f}",
            f"{stats.avg_latency:.1f}",
            f"{stats.throughput:.3f}",
        ])
    text = format_table(
        f"Design space: topology at {NTERMINALS} terminals "
        f"(rate={RATE})",
        ["topology", "zero-load latency", f"latency @{RATE:.0%}",
         f"throughput @{RATE:.0%}"],
        rows,
    )
    write_result("design_space_topology.txt", text)

    mesh_zl, mesh_stats = measured["mesh 4x4"]
    ring_zl, ring_stats = measured["ring 16"]
    # Mesh wins on distance (diameter 6 vs ring diameter 8) and
    # carries at least the same delivered load.
    assert mesh_zl <= ring_zl
    assert mesh_stats.avg_latency <= ring_stats.avg_latency
    assert mesh_stats.throughput >= ring_stats.throughput - 0.005
