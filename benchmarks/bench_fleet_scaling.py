"""Fleet scaling: mesh64 verif-sweep throughput vs worker count.

Not a paper figure — quantifies the :mod:`repro.fleet` sharding win.
The campaign is N identical-shape (different-seed) mesh64 differential
sweeps, each co-simulating the static-scheduled interpreter against
the SimJIT-compiled kernel of the same RTL mesh — the SimJIT point
makes every worker lean on the shared content-addressed ``.so`` cache
(one compile for the whole fleet, prewarmed before timing so every
worker-count config measures simulation, not gcc).

Reported per worker count: campaign wall seconds, tasks/minute, and
speedup over the 1-worker baseline.  Two properties are asserted:

- the ``repro-fleet-v1`` report is byte-identical at every worker
  count (always — this is the fleet's core contract);
- 4 workers reach >= 2.5x 1-worker throughput — *only asserted when
  the host grants >= 4 usable CPUs* (``host_cpus`` is recorded in the
  JSON so the numbers are interpretable: on a 1-CPU container the
  honest speedup is ~1x and the scaling claim is untestable).

``BENCH_QUICK=1`` shrinks to mesh16 and workers (1, 2) for CI smoke.
Results land in ``benchmarks/results/BENCH_fleet.json``.
"""

import hashlib
import os
import tempfile
import time

from common import format_table, write_json_result
from repro.fleet import Campaign, VerifSweepTask, run_campaign
from repro.fleet.runner import default_nworkers

QUICK = os.environ.get("BENCH_QUICK", "0").strip().lower() not in (
    "", "0", "false", "no")

NROUTERS = 16 if QUICK else 64
NTASKS = 4 if QUICK else 8
NTXNS_PER_PORT = 2
WORKERS = (1, 2) if QUICK else (1, 2, 4, 8)
SEED = 7

# Static-vs-SimJIT points: cycle-exact, and the jit point pulls the
# shared .so cache into the measurement.
POINTS = (("static", {"sched": "static"}), ("jit", {"jit": True}))


def _campaign():
    return Campaign(f"fleet-mesh{NROUTERS}", SEED, [
        VerifSweepTask(f"verif/mesh{NROUTERS}/{i}", scenario="mesh",
                       ntxns=NTXNS_PER_PORT, points=POINTS,
                       dut_params={"nrouters": NROUTERS})
        for i in range(NTASKS)
    ])


def test_fleet_scaling():
    cache_dir = os.environ.get("SIMJIT_CACHE_DIR") or tempfile.mkdtemp(
        prefix="fleet_bench_cache_")
    os.environ["SIMJIT_CACHE_DIR"] = cache_dir

    # Prewarm the shared .so cache: the one compile the whole fleet
    # needs should not be charged to (only) the first config timed.
    warm = run_campaign(
        Campaign("prewarm", SEED, [_campaign().tasks[0]]), nworkers=1)
    assert warm.ok

    host_cpus = default_nworkers()
    rows = []
    reports = {}
    for nworkers in WORKERS:
        start = time.perf_counter()
        res = run_campaign(_campaign(), nworkers=nworkers)
        elapsed = time.perf_counter() - start
        assert res.ok, res.report["failures"]
        reports[nworkers] = res.report_json()
        rows.append({
            "nworkers": nworkers,
            "elapsed_s": round(elapsed, 3),
            "tasks_per_min": round(60.0 * NTASKS / elapsed, 2),
        })

    base = rows[0]["tasks_per_min"]
    for row in rows:
        row["speedup"] = round(row["tasks_per_min"] / base, 2)

    # Core contract, asserted unconditionally: worker count must not
    # leak into the report bytes.
    baseline = reports[WORKERS[0]]
    for nworkers, text in reports.items():
        assert text == baseline, \
            f"report at {nworkers} workers differs from baseline"
    report_sha = hashlib.sha256(baseline.encode()).hexdigest()

    print()
    print(format_table(
        f"fleet scaling: {NTASKS} x mesh{NROUTERS} verif sweeps "
        f"(host_cpus={host_cpus})",
        ["workers", "elapsed_s", "tasks/min", "speedup"],
        [[r["nworkers"], r["elapsed_s"], r["tasks_per_min"],
          f"{r['speedup']:.2f}x"] for r in rows]))
    write_json_result(
        "fleet", rows, host_cpus=host_cpus, ntasks=NTASKS,
        nrouters=NROUTERS, ntxns_per_port=NTXNS_PER_PORT,
        report_sha256=report_sha, quick=QUICK)

    # The scaling claim needs real parallel hardware to be meaningful.
    if not QUICK and host_cpus >= 4:
        four = next(r for r in rows if r["nworkers"] == 4)
        assert four["speedup"] >= 2.5, \
            f"4-worker speedup {four['speedup']}x < 2.5x"


if __name__ == "__main__":
    test_fleet_scaling()
