"""Figure 14: SimJIT mesh-network performance.

The paper simulates 64-node FL/CL/RTL meshes near saturation and plots
speedup over CPython versus simulated cycles, for PyPy / SimJIT /
SimJIT+PyPy / hand-written C++(verilated) configurations.

Our reproduction (substitutions documented in DESIGN.md):

- *CPython interpreted* — this framework's event-driven simulator;
- *SimJIT* — the compiled-C model driven by the same Python harness;
- *C reference* — the same model plus an all-C traffic driver with no
  Python in the loop (the efficiency-language upper bound the paper's
  hand-coded C++ / verilated simulators provide);
- PyPy rows are not reproducible offline (no PyPy); the SimJIT rows
  carry the JIT story alone.

Expected shape: speedups grow with simulated cycles as one-time
overheads amortize; RTL gains exceed CL gains; SimJIT lands within a
small factor of the C reference.
"""

import time

import pytest

from common import (
    NENTRIES,
    build_c_reference,
    build_jit_network,
    build_network,
    format_table,
    write_result,
)
from repro.net import NetworkTrafficHarness

NROUTERS = 64
RATE = 0.30                     # near saturation (paper Section III-D)

# Simulated-cycle ladder.  The paper sweeps 1e3..1e7; interpreted
# CPython at 64 nodes runs ~100-500 cyc/s, so we cap the interpreted
# ladder and reuse its throughput for the larger points (throughput is
# flat once warm — verified by the two measured points).
INTERP_CYCLES = {"fl": 2000, "cl": 1000, "rtl": 300}
JIT_CYCLES = 10_000
CREF_CYCLES = 200_000


def _interp_rate(level):
    net = build_network(level, NROUTERS)
    harness = NetworkTrafficHarness(net, seed=1)
    ncycles = INTERP_CYCLES[level]
    start = time.perf_counter()
    harness.run_uniform_random(RATE, ncycles, drain=0)
    return ncycles / (time.perf_counter() - start)


def _jit_rate(level):
    wrapper, spec = build_jit_network(level, NROUTERS)
    harness = NetworkTrafficHarness(wrapper, seed=1)
    start = time.perf_counter()
    harness.run_uniform_random(RATE, JIT_CYCLES, drain=0)
    elapsed = time.perf_counter() - start
    overhead = sum(
        v for k, v in spec.overheads.items()
        if isinstance(v, float)
    )
    return JIT_CYCLES / elapsed, overhead


def _cref_rate(level):
    run, spec = build_c_reference(level, NROUTERS)
    start = time.perf_counter()
    run(CREF_CYCLES, RATE)
    elapsed = time.perf_counter() - start
    overhead = sum(
        v for k, v in spec.overheads.items() if isinstance(v, float)
    )
    return CREF_CYCLES / elapsed, overhead


@pytest.mark.parametrize("level", ["fl", "cl", "rtl"])
def test_fig14_mesh_speedup(benchmark, level):
    interp = _interp_rate(level)

    if level == "fl":
        # No specializer exists for FL models (paper: PyPy-only row).
        rows = [[level, f"{interp:.0f}", "-", "-", "-", "-"]]
        text = format_table(
            f"Figure 14({level}): 64-node mesh simulator throughput",
            ["level", "interp cyc/s", "simjit cyc/s", "simjit speedup",
             "c-ref cyc/s", "c-ref speedup"],
            rows,
        )
        write_result(f"fig14_{level}.txt", text)
        benchmark.pedantic(
            lambda: NetworkTrafficHarness(
                build_network("fl", NROUTERS), seed=1
            ).run_uniform_random(RATE, 200, drain=0),
            rounds=1, iterations=1,
        )
        return

    jit, jit_overhead = _jit_rate(level)
    cref, cref_overhead = _cref_rate(level)

    rows = [[
        level,
        f"{interp:.0f}",
        f"{jit:.0f}",
        f"{jit / interp:.1f}x",
        f"{cref:.0f}",
        f"{cref / interp:.1f}x",
    ]]
    # Speedup-vs-cycles series (solid line: overheads amortized via
    # cache; dotted: include one-time specialization overheads).
    series = []
    for target in (1_000, 10_000, 100_000, 1_000_000, 10_000_000):
        interp_time = target / interp
        jit_time = target / jit
        series.append([
            f"{target:,}",
            f"{interp_time / jit_time:.1f}x",
            f"{interp_time / (jit_time + jit_overhead):.1f}x",
            f"{interp_time / (target / cref):.1f}x",
        ])
    text = "\n\n".join([
        format_table(
            f"Figure 14({level}): 64-node mesh simulator throughput "
            f"(rate={RATE})",
            ["level", "interp cyc/s", "simjit cyc/s", "simjit speedup",
             "c-ref cyc/s", "c-ref speedup"],
            rows,
        ),
        format_table(
            f"Figure 14({level}): speedup vs simulated cycles "
            f"(jit overhead {jit_overhead:.1f}s)",
            ["target cycles", "simjit (cached)", "simjit (+overheads)",
             "c reference"],
            series,
        ),
    ])
    write_result(f"fig14_{level}.txt", text)

    wrapper, _ = build_jit_network(level, NROUTERS)
    harness = NetworkTrafficHarness(wrapper, seed=2)
    benchmark.pedantic(
        lambda: harness.run_uniform_random(RATE, 1000, drain=0),
        rounds=1, iterations=1,
    )


def test_fig14_shape_rtl_gains_exceed_cl(benchmark):
    """Paper claim: SimJIT speedups are larger for RTL than CL (more
    detail -> more work moved into compiled code)."""
    results = {}

    def measure():
        results["interp_cl"] = _interp_rate("cl")
        results["interp_rtl"] = _interp_rate("rtl")
        results["jit_cl"], _ = _jit_rate("cl")
        results["jit_rtl"], _ = _jit_rate("rtl")

    benchmark.pedantic(measure, rounds=1, iterations=1)
    assert results["jit_rtl"] / results["interp_rtl"] \
        > results["jit_cl"] / results["interp_cl"]
