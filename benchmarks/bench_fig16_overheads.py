"""Figure 16: SimJIT specialization overheads.

The paper tabulates per-phase overheads (elaboration, code generation,
verilation, compilation, Python wrapping, simulator creation) for
SimJIT-CL and SimJIT-RTL on 16- and 64-node meshes, observing that
compile time dominates and grows with design size.

Our phases map as: elab = elaboration + net flattening; veri = IR
lowering + static scheduling (the translation role Verilator plays in
the paper's RTL flow); cgen = C emission; comp = gcc; wrap = dlopen +
engine construction; simc = wrapper-model creation.
"""

import pytest

from common import build_network, format_table, specializer_for, write_result

CONFIGS = [("cl", 16), ("cl", 64), ("rtl", 16), ("rtl", 64)]
PHASES = ["elab", "veri", "cgen", "comp", "wrap", "simc"]


def _measure(level, nrouters):
    net = build_network(level, nrouters)
    spec = specializer_for(level)(net, cache=False)
    spec.specialize()
    return spec.overheads


def test_fig16_overheads_table(benchmark):
    rows = []
    measured = {}

    def run_all():
        for level, nrouters in CONFIGS:
            measured[(level, nrouters)] = _measure(level, nrouters)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    for level, nrouters in CONFIGS:
        overheads = measured[(level, nrouters)]
        total = sum(overheads.get(p, 0.0) for p in PHASES)
        rows.append(
            [f"{level.upper()} {nrouters}"]
            + [f"{overheads.get(p, 0.0):.2f}" for p in PHASES]
            + [f"{total:.2f}"]
        )
    text = format_table(
        "Figure 16: SimJIT specialization overheads (seconds)",
        ["config"] + PHASES + ["total"],
        rows,
    )
    write_result("fig16_overheads.txt", text)

    # Paper shape 1: compilation dominates every configuration.
    for (level, nrouters), overheads in measured.items():
        others = sum(overheads.get(p, 0.0)
                     for p in PHASES if p != "comp")
        assert overheads["comp"] > others, (level, nrouters)

    # Paper shape 2: overheads grow with design size.
    for level in ("cl", "rtl"):
        small = sum(measured[(level, 16)].get(p, 0.0) for p in PHASES)
        big = sum(measured[(level, 64)].get(p, 0.0) for p in PHASES)
        assert big > small, level


def test_fig16_caching_removes_compile_overhead(benchmark):
    """Paper Section IV-A: SimJIT-RTL caches translation results, so a
    second specialization of the same design skips verilation+compile."""
    from common import NENTRIES
    net_a = build_network("rtl", 16)
    spec_a = specializer_for("rtl")(net_a)   # cache on

    def first():
        spec_a.specialize()

    benchmark.pedantic(first, rounds=1, iterations=1)

    net_b = build_network("rtl", 16)
    spec_b = specializer_for("rtl")(net_b)
    spec_b.specialize()
    assert spec_b.overheads["cache_hit"]
    assert spec_b.overheads["comp"] <= 0.2
