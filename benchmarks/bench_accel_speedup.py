"""Section III-C claim: CL-tile accelerator speedup.

The paper's CL simulation of the accelerator-augmented tile estimates a
2.9x speedup over a loop-unrolled scalar implementation on a
1024x1024 matrix-vector multiplication.  We run the same comparison
(smaller matrix — interpreted CL simulation, same code paths) and check
the direction and rough magnitude.
"""

import pytest

from common import format_table, write_result
from repro.accel import (
    mvmult_data,
    mvmult_scalar,
    mvmult_unrolled,
    mvmult_xcel,
    run_tile,
)
from repro.accel.kernels import Y_BASE
from repro.proc import assemble

ROWS, COLS = 8, 32


def test_accel_speedup_cl_tile(benchmark):
    data, expected = mvmult_data(ROWS, COLS)
    cycle_counts = {}

    def run_all():
        for name, kernel in [
            ("scalar", mvmult_scalar(ROWS, COLS)),
            ("unrolled", mvmult_unrolled(ROWS, COLS)),
            ("xcel", mvmult_xcel(ROWS, COLS)),
        ]:
            tile, ncycles = run_tile(
                ("cl", "cl", "cl"), assemble(kernel), data,
                max_cycles=5_000_000)
            got = [tile.mem.read_word(Y_BASE + 4 * i)
                   for i in range(ROWS)]
            assert got == expected, name
            cycle_counts[name] = ncycles

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    speedup_vs_unrolled = cycle_counts["unrolled"] / cycle_counts["xcel"]
    speedup_vs_scalar = cycle_counts["scalar"] / cycle_counts["xcel"]
    rows = [
        ["scalar", cycle_counts["scalar"],
         f"{speedup_vs_scalar:.2f}x"],
        ["unrolled (paper baseline)", cycle_counts["unrolled"],
         f"{speedup_vs_unrolled:.2f}x"],
        ["accelerated (xcel)", cycle_counts["xcel"], "1.00x"],
    ]
    text = format_table(
        f"Section III-C: CL tile, mvmult {ROWS}x{COLS} "
        "(paper: accelerator 2.9x over unrolled scalar)",
        ["kernel", "simulated cycles", "xcel speedup over it"],
        rows,
    )
    write_result("accel_speedup_cl.txt", text)

    # Shape: the accelerator wins by an integer-ish factor, same
    # regime as the paper's 2.9x.
    assert 1.5 < speedup_vs_unrolled < 30
    assert speedup_vs_scalar > speedup_vs_unrolled
