"""Design-space exploration: router buffer depth (Section III-D style).

Not a paper figure — this is the *kind* of study the paper argues the
framework exists to make cheap: sweep a microarchitectural parameter
(per-port elastic-buffer depth) across the 8x8 CL mesh and measure the
latency/throughput consequences.  SimJIT-CL compiles each design point,
so the whole sweep runs in seconds.
"""

import pytest

from common import DATA_NBITS, NMSGS, format_table, write_result
from repro.core.simjit import SimJITCL
from repro.net import (
    MeshNetworkStructural,
    NetworkTrafficHarness,
    RouterCL,
    measure_zero_load_latency,
)

NROUTERS = 64
DEPTHS = [1, 2, 4, 8]
RATE = 0.30       # near the nominal saturation point
NCYCLES = 1200


def _build(depth):
    net = MeshNetworkStructural(
        RouterCL, NROUTERS, NMSGS, DATA_NBITS, depth).elaborate()
    return SimJITCL(net).specialize().elaborate()


def test_buffer_depth_design_space(benchmark):
    rows = []
    measured = {}

    def sweep():
        for depth in DEPTHS:
            zero_load = measure_zero_load_latency(_build(depth),
                                                  npairs=15)
            stats = NetworkTrafficHarness(_build(depth), seed=9) \
                .run_uniform_random(RATE, NCYCLES, warmup=200)
            measured[depth] = (zero_load, stats)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    for depth in DEPTHS:
        zero_load, stats = measured[depth]
        rows.append([
            depth,
            f"{zero_load:.1f}",
            f"{stats.avg_latency:.1f}",
            f"{stats.throughput:.3f}",
        ])
    text = format_table(
        f"Design space: router buffer depth (8x8 CL mesh, "
        f"rate={RATE})",
        ["buffer depth", "zero-load latency", "latency @30%",
         "throughput @30%"],
        rows,
    )
    write_result("design_space_buffers.txt", text)

    # Deeper buffers must not hurt zero-load latency and must raise
    # (or hold) delivered throughput under load.
    zl = {d: measured[d][0] for d in DEPTHS}
    thr = {d: measured[d][1].throughput for d in DEPTHS}
    assert zl[8] <= zl[1] + 1.0
    assert thr[8] >= thr[1] - 0.005
    # Depth-1 elastic buffers bottleneck a loaded mesh.
    assert thr[4] > thr[1]
