"""Legacy setup shim.

The canonical metadata lives in pyproject.toml; this file exists so the
package can be installed in editable mode on machines without the
``wheel`` package or network access (``python setup.py develop``).
"""

from setuptools import setup

setup()
