#!/usr/bin/env python
"""Verilog generation for the component library and case-study RTL.

Translates every Verilog-translatable model in the repository and
writes the sources under ``examples/verilog_out/`` — the handoff point
to an EDA toolflow (paper Figure 3's right-hand edge).

Run:  python examples/translate_to_verilog.py
"""

import os

from repro.accel import DotProductRTL, MemArbiter, XcelMsg
from repro.components import (
    Adder,
    BypassQueue,
    IntPipelinedMultiplier,
    Mux,
    NormalQueue,
    RegEnRst,
    Register,
    RoundRobinArbiter,
)
from repro.core.translation import TranslationTool
from repro.mem import CacheRTL, MemMsg
from repro.net import MeshNetworkStructural, RouterRTL
from repro.proc import ProcRTL

OUT_DIR = os.path.join(os.path.dirname(__file__), "verilog_out")

DESIGNS = [
    ("register", lambda: Register(32)),
    ("reg_en_rst", lambda: RegEnRst(32, reset_value=7)),
    ("mux4", lambda: Mux(32, 4)),
    ("adder", lambda: Adder(32)),
    ("multiplier", lambda: IntPipelinedMultiplier(32, 4)),
    ("queue2", lambda: NormalQueue(2, 32)),
    ("bypass_queue", lambda: BypassQueue(32)),
    ("rr_arbiter", lambda: RoundRobinArbiter(4)),
    ("mem_arbiter", lambda: MemArbiter(MemMsg())),
    ("cache", lambda: CacheRTL(MemMsg(), MemMsg(), 64)),
    ("dotprod_accel", lambda: DotProductRTL(MemMsg(), XcelMsg())),
    ("processor", lambda: ProcRTL()),
    ("router", lambda: RouterRTL(5, 16, 256, 32, 2)),
    ("mesh16", lambda: MeshNetworkStructural(RouterRTL, 16, 256, 32, 2)),
]


def main():
    os.makedirs(OUT_DIR, exist_ok=True)
    total_lines = 0
    for name, factory in DESIGNS:
        tool = TranslationTool(factory().elaborate())
        path = os.path.join(OUT_DIR, f"{name}.v")
        tool.to_file(path)
        nlines = len(tool.verilog.splitlines())
        nmodules = tool.verilog.count("endmodule")
        total_lines += nlines
        print(f"  {name:16} -> {path}  "
              f"({nlines:5} lines, {nmodules:2} modules, "
              f"top {tool.top_module})")
    print(f"\n  total: {total_lines} lines of Verilog "
          f"across {len(DESIGNS)} designs")


if __name__ == "__main__":
    main()
