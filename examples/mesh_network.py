#!/usr/bin/env python
"""The Section III-D case study: an 8x8 mesh on-chip network.

Builds the structural mesh with FL, CL, and RTL routers from one
top-level description, verifies packet delivery, and sweeps injection
rate to find the zero-load latency and saturation point.

Run:  python examples/mesh_network.py
"""

from repro.core.simjit import SimJITCL
from repro.net import (
    MeshNetworkStructural,
    NetworkFL,
    NetworkTrafficHarness,
    RouterCL,
    RouterRTL,
    find_saturation_point,
    measure_zero_load_latency,
)

NMSGS, DATA_NBITS, NENTRIES = 256, 32, 2


def main():
    # --- one structural description, three router types ----------------
    print("== single-packet delivery across levels ==")
    for name, net in [
        ("FL (ideal crossbar)", NetworkFL(16, NMSGS, DATA_NBITS,
                                          NENTRIES)),
        ("CL mesh", MeshNetworkStructural(RouterCL, 16, NMSGS,
                                          DATA_NBITS, NENTRIES)),
        ("RTL mesh", MeshNetworkStructural(RouterRTL, 16, NMSGS,
                                           DATA_NBITS, NENTRIES)),
    ]:
        harness = NetworkTrafficHarness(net.elaborate())
        latency = harness.send_single(0, 15)
        print(f"  {name:22} corner-to-corner latency: {latency} cycles")

    # --- 8x8 CL mesh characterization (SimJIT-compiled for speed) -----
    print("\n== 8x8 CL mesh characterization ==")

    def build():
        net = MeshNetworkStructural(
            RouterCL, 64, NMSGS, DATA_NBITS, NENTRIES).elaborate()
        return SimJITCL(net).specialize().elaborate()

    zero_load = measure_zero_load_latency(build(), npairs=20)
    print(f"  zero-load latency: {zero_load:.1f} cycles "
          "(paper estimates 13)")

    sweep = []
    for rate in (0.05, 0.15, 0.25, 0.30, 0.35, 0.40):
        stats = NetworkTrafficHarness(build(), seed=3) \
            .run_uniform_random(rate, 1000, warmup=200)
        sweep.append((rate, stats.avg_latency, stats.throughput))
        print(f"  rate {rate:.2f}: latency {stats.avg_latency:5.1f}  "
              f"throughput {stats.throughput:.3f}")
    saturation = find_saturation_point(sweep, zero_load)
    print(f"  saturation at ~{saturation} injection rate "
          "(paper estimates 32%)")


if __name__ == "__main__":
    main()
