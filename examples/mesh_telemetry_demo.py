#!/usr/bin/env python
"""Unified telemetry on the mesh network case study.

One simulation, three observability pillars:

- **performance counters** — every router counts flits and stalls per
  output port; the hierarchy is collected at elaboration and read back
  through ``sim.telemetry``, whatever the schedule (here: the compiled
  mega-cycle kernel);
- **transaction tracing** — passive val/rdy taps on the terminal
  ports record every transfer and emit a Chrome trace-event file
  (load it at ``chrome://tracing`` or https://ui.perfetto.dev);
- **export** — one JSON report carries counters, subtree roll-ups,
  histograms, and schedule info.

Run:  python examples/mesh_telemetry_demo.py [nrouters] [ncycles]
"""

import os
import sys

from repro import SimulationTool
from repro.net import MeshNetworkStructural, NetworkTrafficHarness, RouterRTL

OUT_DIR = os.path.join(os.path.dirname(__file__), "telemetry_out")


def main(nrouters=16, ncycles=400):
    net = MeshNetworkStructural(RouterRTL, nrouters, 256, 32, 2)
    net.elaborate()
    sim = SimulationTool(net, sched="static")

    # Tap every terminal port before reset; taps ride the cycle-hook
    # path, counters ride inside the schedule.
    tracer = sim.telemetry.trace()
    tracer.tap_model(net)

    harness = NetworkTrafficHarness(net, sim=sim, seed=42)
    stats = harness.run_uniform_random(0.20, ncycles, warmup=50)

    print(f"== {nrouters}-router RTL mesh, uniform random 0.20, "
          f"{sim.ncycles} cycles ==")
    print(f"  delivered {stats.ejected} packets, "
          f"avg latency {stats.avg_latency:.1f} cycles")

    # --- counters: hierarchical roll-up --------------------------------
    totals = sim.telemetry.leaf_totals()
    flits = sum(v for k, v in totals.items() if k.startswith("flits"))
    stalls = sum(v for k, v in totals.items() if k.startswith("stalls"))
    print("\n== counters ==")
    print(f"  total flit hops : {flits}")
    print(f"  total stalls    : {stalls}")
    busiest = max(
        sim.telemetry.subtree_totals().items(),
        key=lambda item: sum(item[1].values()))
    print(f"  busiest subtree : {busiest[0]} "
          f"({sum(busiest[1].values())} events)")

    # --- transactions: latency distribution ----------------------------
    print("\n== transactions ==")
    summary = tracer.summary()
    transfers = sum(t["transfers"] for t in summary["taps"].values())
    print(f"  transfers observed: {transfers} across "
          f"{len(summary['taps'])} taps")

    # --- export ---------------------------------------------------------
    os.makedirs(OUT_DIR, exist_ok=True)
    trace_path = os.path.join(OUT_DIR, "mesh.trace.json")
    tracer.write_chrome_trace(trace_path)
    report_path = os.path.join(OUT_DIR, "mesh.telemetry.json")
    sim.telemetry.report().to_json(report_path)
    print("\n== artifacts ==")
    print(f"  chrome trace : {trace_path}")
    print(f"  json report  : {report_path}")
    print("\n" + sim.telemetry.report().summary())


if __name__ == "__main__":
    main(*(int(a) for a in sys.argv[1:3]))
