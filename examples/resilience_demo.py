#!/usr/bin/env python
"""Resilience on the mesh network case study.

One long mesh simulation, three resilience pillars:

- **fault injection** — seeded SEU bit-flips and a stuck-at window on
  router-internal registers, plus a fault schedule preview, all
  deterministic per seed and identical on every simulator substrate;
- **checkpoint/restore** — a :class:`CheckpointRing` snapshots the run
  every N cycles; after a "failure" we rewind to the nearest snapshot
  and replay the suffix, asserting the replayed timeline is
  bit-identical (same injectors re-fire on the same cycles);
- **watchdog** — the tail of the run executes under a
  :class:`Watchdog` with cycle and wall-clock budgets; its diagnostics
  (including the oscillating-signal report for comb-loop hangs) are
  written as JSON next to this script.

Run:  python examples/resilience_demo.py [nrouters] [ncycles]
"""

import json
import os
import sys

from repro import CheckpointRing, SEUInjector, SimulationTool, StuckAtFault, Watchdog
from repro.net import MeshNetworkStructural, RouterRTL
from repro.resilience import fault_schedule

OUT_DIR = os.path.join(os.path.dirname(__file__), "resilience_out")


def build(nrouters):
    net = MeshNetworkStructural(RouterRTL, nrouters, 256, 32, 2)
    net.elaborate()
    sim = SimulationTool(net, sched="static")
    dest_lo, _ = net.msg_type.field_slice("dest")
    injectors = [
        SEUInjector("routers[1].priority[2]", p=0.02, seed=42),
        StuckAtFault("routers[2].hold_val[0]", bit=0, value=1,
                     from_cycle=100, until=160),
    ]
    for inj in injectors:
        inj.install(sim)

    def step():
        cyc = sim.ncycles
        for i in range(nrouters):
            port = net.in_[i]
            port.val.value = 1 if (cyc + i) % 4 < 2 else 0
            port.msg.value = ((i * 7 + cyc) % nrouters) << dest_lo
            net.out[i].rdy.value = 0 if (cyc + i) % 5 == 0 else 1
        sim.eval_combinational()
        sim.cycle()
        return tuple(
            (int(net.out[i].val), int(net.out[i].msg))
            for i in range(nrouters))

    return net, sim, injectors, step


def main(nrouters=16, ncycles=600):
    os.makedirs(OUT_DIR, exist_ok=True)
    net, sim, injectors, step = build(nrouters)
    ring = CheckpointRing(sim, interval=128, keep=4)
    sim.reset()

    print(f"== {nrouters}-router RTL mesh under fault injection, "
          f"{ncycles} cycles ==")
    preview = fault_schedule(0.02, 42)
    print(f"  SEU schedule preview (p=0.02, seed=42): first fire at "
          f"cycle {next(c for c in range(10**6) if preview(c))}")

    timeline = {}
    for _ in range(ncycles):
        cyc = sim.ncycles
        timeline[cyc] = step()
    end_fp = sim.save_checkpoint().fingerprint()
    seu, stuck = injectors
    print(f"  SEU fires: {seu.n_fires}  (log head: {seu.log[:3]})")
    print(f"  stuck-at fires: {stuck.n_fires}")
    print(f"  checkpoints in ring: "
          f"{[cp.ncycles for cp in ring.checkpoints]}")

    # --- rewind and deterministic replay -------------------------------
    failure_cycle = sim.ncycles - 50
    cp = ring.nearest(failure_cycle)
    print(f"\n== replaying from nearest checkpoint ==")
    print(f"   'failure' at cycle {failure_cycle}, rewinding to "
          f"{cp.ncycles} ({failure_cycle - cp.ncycles} cycles back)")
    sim.restore_checkpoint(cp)
    replayed = {}
    while sim.ncycles in timeline:
        cyc = sim.ncycles
        replayed[cyc] = step()
    assert replayed == {c: timeline[c] for c in replayed}
    assert sim.save_checkpoint().fingerprint() == end_fp
    print(f"  replayed {len(replayed)} cycles: bit-identical to the "
          f"original run (fingerprint match)")

    # --- watchdog-guarded tail -----------------------------------------
    watchdog = Watchdog(sim, max_wall_seconds=60.0, max_cycles=200,
                        check_every=16)
    ran = watchdog.run(100)
    diag_path = os.path.join(OUT_DIR, "watchdog_diagnostics.json")
    watchdog.write_report(diag_path)
    with open(diag_path) as f:
        diag = json.load(f)
    print(f"\n== watchdog ==")
    print(f"  guarded tail ran {ran} steps within budget")
    print(f"  diagnostics -> {os.path.relpath(diag_path)} "
          f"(keys: {sorted(diag)})")


if __name__ == "__main__":
    main(*(int(a) for a in sys.argv[1:3]))
