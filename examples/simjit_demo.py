#!/usr/bin/env python
"""SimJIT demonstration (paper Section IV).

Specializes a 16-node RTL mesh to C, shows cycle-exactness against the
interpreted simulation, the specialization overhead breakdown
(Figure 16's phases), and the resulting speedup.

Run:  python examples/simjit_demo.py
"""

import time

from repro.core.simjit import SimJITRTL
from repro.net import (
    MeshNetworkStructural,
    NetworkTrafficHarness,
    RouterRTL,
)


def build():
    return MeshNetworkStructural(RouterRTL, 16, 256, 32, 2).elaborate()


def main():
    # --- specialize -----------------------------------------------------
    spec = SimJITRTL(build(), cache=False)
    jit = spec.specialize().elaborate()
    print("== specialization overheads (Figure 16 phases) ==")
    for phase in ("elab", "veri", "cgen", "comp", "wrap", "simc"):
        print(f"  {phase:5} {spec.overheads.get(phase, 0.0):7.3f} s")
    print(f"  generated C: {len(spec.c_source.splitlines())} lines "
          f"-> {spec.lib_path}")

    # --- cycle-exactness -------------------------------------------------
    interp_stats = NetworkTrafficHarness(build(), seed=7) \
        .run_uniform_random(0.25, 300)
    jit_stats = NetworkTrafficHarness(jit, seed=7) \
        .run_uniform_random(0.25, 300)
    assert interp_stats.latencies == jit_stats.latencies
    print("\n== cycle-exactness ==")
    print(f"  interp: {interp_stats.ejected} packets, "
          f"avg latency {interp_stats.avg_latency:.3f}")
    print(f"  simjit: {jit_stats.ejected} packets, "
          f"avg latency {jit_stats.avg_latency:.3f}  (identical)")

    # --- speedup -----------------------------------------------------------
    ncycles = 2000
    start = time.perf_counter()
    NetworkTrafficHarness(build(), seed=1) \
        .run_uniform_random(0.25, ncycles, drain=0)
    interp_time = time.perf_counter() - start

    start = time.perf_counter()
    NetworkTrafficHarness(jit, seed=1) \
        .run_uniform_random(0.25, ncycles, drain=0)
    jit_time = time.perf_counter() - start

    print("\n== performance ==")
    print(f"  interpreted : {ncycles / interp_time:8.0f} cycles/s")
    print(f"  SimJIT      : {ncycles / jit_time:8.0f} cycles/s")
    print(f"  speedup     : {interp_time / jit_time:8.1f}x")


if __name__ == "__main__":
    main()
