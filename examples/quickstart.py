#!/usr/bin/env python
"""Quickstart: the paper's Figure 2/4 walk-through.

Builds the parameterizable MuxReg model (a mux feeding a register),
simulates it, inspects it with the user tools, and translates it to
Verilog — the complete model/tool flow of paper Figure 3.

Run:  python examples/quickstart.py
"""

from repro import InPort, Model, OutPort, SimulationTool, bw
from repro.components import Mux, Register
from repro.core.translation import TranslationTool
from repro.tools import design_stats, hierarchy_tree, lint


class MuxReg(Model):
    """Figure 2's MuxReg: select one of ``nports`` inputs, register it."""

    def __init__(s, nbits=8, nports=4):
        s.in_ = [InPort(nbits) for _ in range(nports)]
        s.sel = InPort(bw(nports))
        s.out = OutPort(nbits)

        s.reg_ = Register(nbits)
        s.mux = Mux(nbits, nports)

        s.connect(s.sel, s.mux.sel)
        for i in range(nports):
            s.connect(s.in_[i], s.mux.in_[i])
        s.connect(s.mux.out, s.reg_.in_)
        s.connect(s.reg_.out, s.out)


def main():
    # --- build and elaborate (Figure 4 lines 7-8) --------------------
    model = MuxReg(nbits=8, nports=4).elaborate()

    print("== hierarchy ==")
    print(hierarchy_tree(model))
    print("\n== stats ==")
    for key, value in design_stats(model).items():
        print(f"  {key:16} {value}")
    warnings = lint(model)
    print(f"\n== lint == {len(warnings)} warning(s)")

    # --- simulate (Figure 4 lines 12-18) ------------------------------
    sim = SimulationTool(model)
    sim.reset()
    print("\n== simulation ==")
    for i in range(4):
        model.in_[i].value = 0x10 + i
    for sel in range(4):
        model.sel.value = sel
        sim.cycle()
        print(f"  sel={sel} -> out={model.out.value.hex()}")
        assert model.out == 0x10 + sel

    # --- translate to Verilog (Figure 4 lines 9-10) --------------------
    verilog = TranslationTool(model).verilog
    print("\n== Verilog (first 25 lines) ==")
    print("\n".join(verilog.splitlines()[:25]))
    print(f"... ({len(verilog.splitlines())} lines, "
          f"{verilog.count('endmodule')} modules)")


if __name__ == "__main__":
    main()
