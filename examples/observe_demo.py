#!/usr/bin/env python
"""Waveform observatory on the resilience case studies.

Three pillars, two designs:

- **flight recorder** — an always-on, change-compressed ring buffer of
  the last N cycles of chosen signals, armed here on a mesh network's
  router arbiters while the mega-cycle kernel keeps running;
- **temporal watchpoints** — ``rose`` / ``stable_for`` /
  ``implies_within`` trigger combinators, armed on a
  :class:`ResilientLink` whose forward channel a
  :class:`LinkFaultInjector` is actively sabotaging: the retry
  machinery trips the watchpoints;
- **post-mortem forensics** — a halting watchpoint stops the run with
  a structured diagnostic and dumps a ``repro-observe-v1`` bundle
  (JSON manifest + VCD window), rendered back as an ASCII waveform —
  the same bundle ``python -m repro.observe.dump`` prints.

Run:  python examples/observe_demo.py [nrouters] [ncycles]
"""

import json
import os
import sys

from repro import SimulationTool
from repro.net import MeshNetworkStructural, RouterRTL
from repro.net.resilient_link import ResilientLink
from repro.observe import (
    WatchpointHit,
    changed,
    load_bundle,
    rose,
    stable_for,
)
from repro.observe.dump import render, render_window
from repro.resilience import LinkFaultInjector

OUT_DIR = os.path.join(os.path.dirname(__file__), "observe_out")


def mesh_flight_recorder(nrouters, ncycles):
    """Arm a recorder on router-internal arbiter state, run standing
    traffic on the compiled kernel, and show the recorded tail."""
    print(f"=== flight recorder: {nrouters}-router mesh, "
          f"{ncycles} cycles ===")
    net = MeshNetworkStructural(RouterRTL, nrouters, 256, 32, 2)
    net.elaborate()
    sim = SimulationTool(net, sched="static")
    sim.reset()

    # Tap the arbiter state on router 0's EAST/SOUTH outputs — the
    # ports the bursty traffic below actually flows through.
    rec = sim.flight_recorder(
        signals=["routers[0].grant_val[2]", "routers[0].grant_val[3]",
                 "routers[1].grant_val[4]", "routers[0].priority[2]"],
        depth=64)
    print(f"armed: {rec!r}")
    print(f"kernel still active: {sim.sched_info()['kernel']}")

    dest_lo, _ = net.msg_type.field_slice("dest")
    for i in range(nrouters):
        net.out[i].rdy.value = 1
    # Bursty traffic in kernel-sized chunks: the stimulus changes
    # between chunks, the compiled kernel runs within them.
    chunk = max(1, ncycles // 40)
    for burst in range(40):
        net.in_[0].val.value = burst % 3 != 2
        net.in_[0].msg.value = (burst % nrouters) << dest_lo
        net.in_[1].val.value = burst % 2
        net.in_[1].msg.value = ((nrouters - 1 - burst) % nrouters) \
            << dest_lo
        sim.run(chunk)

    window = rec.window()
    print(f"recorded window: {window!r}")
    print(render_window(window, last_n=24))
    vcd_path = os.path.join(OUT_DIR, "mesh_tail.vcd")
    window.to_vcd(vcd_path)
    print(f"window VCD -> {vcd_path}\n")
    return window


def link_watchpoints():
    """Watchpoints + forensics on a fault-injected ResilientLink."""
    print("=== watchpoints: ResilientLink under LinkFaultInjector ===")
    link = ResilientLink(payload_nbits=16, level="rtl").elaborate()
    sim = SimulationTool(link)
    LinkFaultInjector("fwd", drop=0.35, stall=0.15, seed=7).install(sim)

    sim.flight_recorder(
        signals=["sender.ctr_retries", "receiver.ctr_delivered",
                 "fwd.f_drop", "out.val"],
        depth=48, autodump=OUT_DIR)

    retries = sim.watch(changed("sender.ctr_retries"), name="retry")
    sim.watch(stable_for("receiver.ctr_delivered", 40),
              name="no-progress")
    # Deliberate stop: halt once the link has retried five times, and
    # dump the recorder window on the way out.
    sim.watch(_retries_at_least(5), name="five-retries",
              halt=True, dump=OUT_DIR)

    sim.reset()
    link.out.rdy.value = 1
    payloads = iter(range(1, 200))
    cur = next(payloads)
    try:
        for _ in range(4000):
            link.in_.val.value = 1
            link.in_.msg.value = cur
            sim.eval_combinational()
            if int(link.in_.rdy):
                cur = next(payloads)
            sim.cycle()
    except WatchpointHit as hit:
        print(f"halted: {hit}")
        print("diagnostic:",
              json.dumps(hit.diagnostic, indent=2, default=str))
    print(f"retry watchpoint fired {retries.n_fires}x "
          f"at cycles {retries.fire_cycles()[:8]}")
    assert retries.fired, "fault injection should force retries"
    return _find_bundle()


def _retries_at_least(n):
    from repro.observe import when
    return when(lambda r: r >= n, "sender.ctr_retries")


def _find_bundle():
    bundles = sorted(
        os.path.join(OUT_DIR, f) for f in os.listdir(OUT_DIR)
        if f.startswith("watchpoint_") and f.endswith(".json"))
    return bundles[-1] if bundles else None


def forensics(bundle_path):
    print("\n=== forensics: the dumped repro-observe-v1 bundle ===")
    manifest = load_bundle(bundle_path)
    print(f"bundle: {bundle_path}")
    print(f"schema: {manifest['schema']}  reason: {manifest['reason']}")
    sys.stdout.write(render(manifest, last_n=16))


def main():
    nrouters = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    ncycles = int(sys.argv[2]) if len(sys.argv) > 2 else 2000
    os.makedirs(OUT_DIR, exist_ok=True)

    window = mesh_flight_recorder(nrouters, ncycles)
    assert window.ncycles == 64
    assert any(ch for _, ch in window.changes), \
        "recorded tail should contain signal activity"

    bundle_path = link_watchpoints()
    assert bundle_path is not None, "halting watchpoint should dump"
    forensics(bundle_path)


if __name__ == "__main__":
    main()
