#!/usr/bin/env python
"""Memory over the on-chip network: full vertical composition.

A port-based FL processor fetches instructions and performs loads and
stores from a memory node sitting behind the 2x2 mesh — processor,
network adapters, routers, and memory server are all ordinary framework
models wired through latency-insensitive interfaces, so none of them
knows the memory is remote.

Run:  python examples/memory_over_network.py
"""

from repro.core import Model, SimulationTool
from repro.net import RemoteMemSystem, RouterCL
from repro.proc import ProcFL, assemble
from repro.tools import hierarchy_tree

PROGRAM = """
    li   r1, 10          # n = 10
    li   r10, 0          # sum = 0
loop:
    add  r10, r10, r1
    addi r1, r1, -1
    bne  r1, r0, loop
    li   r2, 0x4000
    sw   r10, 0(r2)      # store result across the network
    halt
"""


class Top(Model):
    def __init__(s):
        s.system = RemoteMemSystem(nclients=2, nrouters=4,
                                   router_type=RouterCL)
        s.proc = ProcFL()
        # imem through client 0, dmem through client 1.
        s.connect(s.proc.imem_ifc.req, s.system.mem_ifcs[0].req)
        s.connect(s.system.mem_ifcs[0].resp, s.proc.imem_ifc.resp)
        s.connect(s.proc.dmem_ifc.req, s.system.mem_ifcs[1].req)
        s.connect(s.system.mem_ifcs[1].resp, s.proc.dmem_ifc.resp)


def main():
    top = Top().elaborate()
    print("== hierarchy (truncated) ==")
    print("\n".join(hierarchy_tree(top).splitlines()[:12]))
    print("   ...")

    top.system.server.load(0, assemble(PROGRAM))
    sim = SimulationTool(top)
    sim.reset()
    while not int(top.proc.done):
        sim.cycle()
    result = top.system.server.read_word(0x4000)
    print("\n== run ==")
    print(f"  program finished in {sim.ncycles} cycles "
          f"({top.proc.num_instrs} instructions, every fetch/load/store "
          "crossing the mesh)")
    print(f"  sum(1..10) stored remotely = {result}")
    assert result == 55


if __name__ == "__main__":
    main()
