#!/usr/bin/env python
"""The Section III-C case study: a dot-product coprocessor, FL -> CL ->
RTL, inside an accelerator-augmented compute tile.

Demonstrates the modeling-towards-layout methodology:

1. run the mvmult kernel on the tile at each accelerator abstraction
   level (same test bench, same software!);
2. compare accelerated vs scalar software on the CL tile (the paper's
   2.9x estimate);
3. extract area/energy/timing estimates for the RTL accelerator.

Run:  python examples/dotprod_accelerator.py
"""

from repro.accel import (
    DotProductRTL,
    XcelMsg,
    mvmult_data,
    mvmult_unrolled,
    mvmult_xcel,
    run_tile,
)
from repro.accel.kernels import Y_BASE
from repro.eda import estimate
from repro.mem import MemMsg
from repro.proc import assemble

ROWS, COLS = 4, 16


def main():
    data, expected = mvmult_data(ROWS, COLS)
    xcel_words = assemble(mvmult_xcel(ROWS, COLS))

    # --- one software kernel, three accelerator abstraction levels ---
    print("== accelerator levels (same software, same harness) ==")
    for accel_level in ("fl", "cl", "rtl"):
        tile, ncycles = run_tile(("cl", "cl", accel_level),
                                 xcel_words, data)
        got = [tile.mem.read_word(Y_BASE + 4 * i) for i in range(ROWS)]
        status = "ok" if got == expected else "WRONG"
        print(f"  accel={accel_level:3}  {ncycles:6} cycles  "
              f"result {status}")

    # --- accelerated vs scalar on the CL tile -------------------------
    print("\n== accelerated vs loop-unrolled scalar (CL tile) ==")
    _, scalar_cycles = run_tile(
        ("cl", "cl", "cl"), assemble(mvmult_unrolled(ROWS, COLS)), data)
    _, xcel_cycles = run_tile(("cl", "cl", "cl"), xcel_words, data)
    print(f"  unrolled scalar : {scalar_cycles:6} cycles")
    print(f"  accelerated     : {xcel_cycles:6} cycles")
    print(f"  speedup         : {scalar_cycles / xcel_cycles:.2f}x "
          "(paper estimates 2.9x)")

    # --- RTL implementation metrics ------------------------------------
    print("\n== RTL accelerator EDA estimates ==")
    report = estimate(DotProductRTL(MemMsg(), XcelMsg()).elaborate())
    print("  " + report.summary().replace("\n", "\n  "))


if __name__ == "__main__":
    main()
