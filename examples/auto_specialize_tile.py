#!/usr/bin/env python
"""Automatic hierarchy specialization (extension of paper Section IV).

The paper leaves "automatically traverse the model hierarchy to find
and specialize appropriate CL and RTL models" as future work; this
example shows the implemented extension: one call compiles every
SimJIT-compatible subtree of the RTL compute tile, leaves the FL magic
memory interpreted, and the mixed compiled/interpreted design runs the
accelerated matrix-vector kernel cycle-exactly.

Run:  python examples/auto_specialize_tile.py
"""

import time

from repro.accel import Tile, mvmult_data, mvmult_xcel
from repro.accel.kernels import Y_BASE
from repro.core import SimulationTool
from repro.core.simjit import auto_specialize
from repro.proc import assemble

ROWS, COLS = 4, 16


def run(tile, words, data):
    tile.elaborate()
    tile.mem.load(0, words)
    for addr, value in data.items():
        tile.mem.write_word(addr, value)
    sim = SimulationTool(tile)
    start = time.perf_counter()
    sim.reset()
    while not int(tile.proc.done):
        sim.cycle()
    elapsed = time.perf_counter() - start
    result = [tile.mem.read_word(Y_BASE + 4 * i) for i in range(ROWS)]
    return sim.ncycles, elapsed, result


def main():
    words = assemble(mvmult_xcel(ROWS, COLS))
    data, expected = mvmult_data(ROWS, COLS)

    interp_cycles, interp_time, interp_result = run(
        Tile(("rtl", "rtl", "rtl")), words, data)

    tile = auto_specialize(Tile(("rtl", "rtl", "rtl")))
    stats = tile._auto_specialize_stats
    print("== auto_specialize decisions ==")
    print(f"  compiled    : {sorted(set(stats['specialized']))}")
    print(f"  interpreted : {sorted(set(stats['interpreted']))}")

    jit_cycles, jit_time, jit_result = run(tile, words, data)

    print("\n== results ==")
    assert interp_result == jit_result == expected
    assert interp_cycles == jit_cycles
    print(f"  result correct, cycle-exact ({interp_cycles} cycles)")
    print(f"  interpreted : {interp_time:.2f}s")
    print(f"  specialized : {jit_time:.2f}s  "
          f"({interp_time / jit_time:.1f}x faster)")


if __name__ == "__main__":
    main()
