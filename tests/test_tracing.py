"""Host-span tracing and the fleet observability plane.

Four layers under test, bottom-up:

1. **Tracer** (:mod:`repro.telemetry.tracing`) — hierarchical spans
   with per-thread depth, ring-buffer eviction accounting, the
   drain-for-streaming primitive, and a disarmed path that is a
   shared no-op object.
2. **Serializer** (:mod:`repro.telemetry.traceevent`) — the one
   Chrome trace-event writer every producer shares: a golden file
   pins the wire format, and ``validate`` rejects malformed traces.
3. **Instrumented framework** — a SimJIT-specialized simulation run
   emits elaborate/schedule/compile/run spans; the watchdog emits a
   ``watchdog.fire`` instant; span records feed ``SimProfiler`` phase
   attribution (the path that works even under the compiled kernel).
4. **Fleet plane** (:mod:`repro.fleet.live` + runner side-channel) —
   the deterministic ``repro-fleet-v1`` report bytes are identical
   with tracing on or off at 1/2/4 workers; the merged campaign
   trace validates, has one pid track per worker, and nests
   elaborate/schedule/compile/run under every task span; per-kind
   duration stats ride in ``FleetResult.stats``.
"""

import io
import json
import os
import threading

import pytest

from repro import Model, OutPort, SimulationTool, Wire
from repro.fleet import (
    BenchPointTask,
    Campaign,
    FaultSweepTask,
    VerifSweepTask,
    run_campaign,
)
from repro.fleet.live import LiveCollector, Ticker, worker_snapshot
from repro.resilience import Watchdog, WatchdogTimeout
from repro.telemetry import traceevent, tracing
from repro.telemetry.profile import SimProfiler
from repro.telemetry.tracing import Tracer


@pytest.fixture(autouse=True)
def _always_disarmed():
    """No test may leak an armed process-global tracer."""
    yield
    tracing.disarm()


# -- 1. tracer core -----------------------------------------------------------


def test_span_records_and_nesting_depth():
    tracer = Tracer()
    with tracer.span("outer", task="t0"):
        with tracer.span("inner"):
            pass
    outer = [r for r in tracer.events if r["name"] == "outer"][0]
    inner = [r for r in tracer.events if r["name"] == "inner"][0]
    assert outer["ph"] == "X" and inner["ph"] == "X"
    assert outer["depth"] == 0 and inner["depth"] == 1
    assert outer["pid"] == os.getpid()
    assert outer["tid"] == threading.get_ident()
    assert outer["args"] == {"task": "t0"} and inner["args"] is None
    # Monotonic-int timestamps; the child interval nests in the parent.
    for rec in (outer, inner):
        assert isinstance(rec["ts"], int) and isinstance(rec["dur"], int)
        assert rec["dur"] >= 0
    assert outer["ts"] <= inner["ts"]
    assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]


def test_span_set_attrs_and_error_capture():
    tracer = Tracer()
    with tracer.span("task") as sp:
        sp.set(status="ok", n=3)
    assert tracer.events[-1]["args"] == {"status": "ok", "n": 3}
    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            raise RuntimeError("nope")
    rec = tracer.events[-1]
    assert rec["args"]["error"] == "RuntimeError"
    # Depth restored after the exception unwound the span.
    with tracer.span("after"):
        pass
    assert tracer.events[-1]["depth"] == 0


def test_instant_and_add_span():
    tracer = Tracer()
    tracer.instant("mark", cycle=41)
    tracer.add_span("ext", 1000, 3500, design="X")
    inst, ext = tracer.events
    assert inst["ph"] == "i" and "dur" not in inst
    assert inst["args"] == {"cycle": 41}
    assert ext == {"name": "ext", "ph": "X", "ts": 1000, "dur": 2500,
                   "pid": os.getpid(), "tid": threading.get_ident(),
                   "depth": 0, "args": {"design": "X"}}


def test_ring_buffer_eviction_counted():
    tracer = Tracer(capacity=4)
    for i in range(10):
        tracer.instant(f"e{i}")
    assert len(tracer) == 4
    assert tracer.dropped == 6
    assert [r["name"] for r in tracer.events] == ["e6", "e7", "e8", "e9"]


def test_drain_empties_the_ring():
    tracer = Tracer()
    for i in range(5):
        tracer.instant(f"e{i}")
    first = tracer.drain()
    assert [r["name"] for r in first] == [f"e{i}" for i in range(5)]
    assert len(tracer) == 0 and tracer.drain() == []
    tracer.instant("late")
    assert [r["name"] for r in tracer.drain()] == ["late"]


def test_threads_get_independent_depth_and_tids():
    tracer = Tracer()
    done = threading.Event()

    def other():
        with tracer.span("thread-span"):
            done.wait(5.0)

    t = threading.Thread(target=other)
    with tracer.span("main-span"):
        t.start()
        done.set()
        t.join()
    recs = {r["name"]: r for r in tracer.events}
    assert recs["thread-span"]["tid"] != recs["main-span"]["tid"]
    # Concurrent, not nested: each thread's depth counter is its own.
    assert recs["thread-span"]["depth"] == 0
    assert recs["main-span"]["depth"] == 0


def test_disarmed_helpers_are_noops():
    assert tracing.active() is None
    sp = tracing.span("anything", n=1)
    # One shared null object — no per-call allocation when disarmed.
    assert sp is tracing.span("other")
    with sp as inner:
        inner.set(status="ignored")
    tracing.instant("dropped")     # swallowed, no error


def test_arm_disarm_roundtrip():
    tracer = tracing.arm(capacity=128)
    assert tracing.active() is tracer
    assert tracer.capacity == 128
    with tracing.span("via-module", k=1):
        tracing.instant("inside")
    assert [r["name"] for r in tracer.events] == ["inside", "via-module"]
    assert tracer.events[0]["depth"] == 1    # instant saw the open span
    assert tracing.disarm() is tracer
    assert tracing.active() is None and tracing.disarm() is None


# -- 2. shared serializer -----------------------------------------------------


def _golden_events():
    return [
        traceevent.process_name(1, "worker 0 (pid 1)"),
        traceevent.process_sort_index(1, 0),
        traceevent.thread_name(1, 10, "main"),
        traceevent.complete("fleet.task", 1, 10, 0.0, 1500.0, cat="host",
                            args={"task": "verif/cache/a",
                                  "kind": "verif"}),
        traceevent.complete("sim.run", 1, 10, 100.0, 900.0, cat="host",
                            args={"design": "CacheRTL", "ncycles": 64}),
        traceevent.instant("watchdog.fire", 1, 10, 650.0, cat="host",
                           args={"kind": "cycle-budget", "cycle": 40}),
        traceevent.async_begin("xact", 1, 10, 120.0, id=3, cat="latency"),
        traceevent.async_end("xact", 1, 10, 480.0, id=3, cat="latency"),
        traceevent.counter("fleet", 1, 1500.0,
                           {"tasks_done": 1, "tasks_failed": 0}),
    ]


def test_trace_event_golden_file(tmp_path):
    """The serialized wire format is pinned byte-for-byte: every
    producer (txtrace, host tracer, fleet collector) shares this
    writer, so a drift here would silently re-shape all of them."""
    trace = traceevent.trace_object(
        _golden_events(), metadata={"campaign": "golden"})
    path = traceevent.write_trace(str(tmp_path / "t.json"), trace)
    with open(path) as handle:
        got = handle.read()
    golden_path = os.path.join(
        os.path.dirname(__file__), "golden", "trace_events.json")
    with open(golden_path) as handle:
        assert got == handle.read()


def test_validate_accepts_own_output():
    trace = traceevent.trace_object(_golden_events())
    events = traceevent.validate(trace)
    assert len(events) == len(_golden_events())


@pytest.mark.parametrize("mutate, match", [
    (lambda t: t.pop("traceEvents"), "traceEvents"),
    (lambda t: t["traceEvents"].append({"ph": "?", "pid": 1, "tid": 0,
                                        "name": "x"}),
     "unknown phase"),
    (lambda t: t["traceEvents"][3].pop("dur"), "dur"),
    (lambda t: t["traceEvents"][3].pop("pid"), "pid"),
    (lambda t: t["traceEvents"].append(
        traceevent.async_end("xact", 1, 10, 900.0, id=99,
                             cat="latency")),
     "async end without begin"),
    (lambda t: t["traceEvents"].pop(7), "unclosed async"),
])
def test_validate_rejects_malformed(mutate, match):
    trace = traceevent.trace_object(_golden_events())
    mutate(trace)
    with pytest.raises(ValueError, match=match):
        traceevent.validate(trace)


def test_tracer_chrome_trace_validates():
    tracer = Tracer()
    with tracer.span("a"):
        with tracer.span("b"):
            pass
    tracer.instant("mark")
    trace = tracer.chrome_trace()
    events = traceevent.validate(trace)
    slices = [e for e in events if e["ph"] == "X"]
    # ns records became us events, rebased near zero.
    assert {e["name"] for e in slices} == {"a", "b"}
    assert all(e["ts"] >= 0.0 for e in slices)
    assert any(e["ph"] == "M" and e["name"] == "process_name"
               for e in events)


# -- 3. instrumented framework ------------------------------------------------


class _TickModel(Model):
    def __init__(s):
        s.out = OutPort(8)
        s.cnt = Wire(8)

        @s.tick_rtl
        def seq():
            if s.reset:
                s.cnt.next = 0
            else:
                s.cnt.next = (s.cnt + 1) & 0xFF
            s.out.next = s.cnt.value


def test_simulation_emits_host_spans():
    """One static-kernel sim run emits the core span vocabulary:
    elaborate, schedule build, kernel compile, reset, run batch."""
    from repro.net import MeshNetworkStructural, RouterRTL

    tracer = tracing.arm()
    net = MeshNetworkStructural(RouterRTL, 4, 256, 32, 2).elaborate()
    sim = SimulationTool(net, sched="static")
    assert sim._kernel is not None
    sim.reset()
    start = sim.ncycles
    sim.run(10)
    tracing.disarm()

    by_name = {}
    for rec in tracer.events:
        by_name.setdefault(rec["name"], []).append(rec)
    for required in ("sim.elaborate", "sim.schedule", "sim.compile",
                     "sim.reset", "sim.run"):
        assert required in by_name, sorted(by_name)
    assert by_name["sim.elaborate"][0]["args"]["design"] \
        == "MeshNetworkStructural"
    run = by_name["sim.run"][-1]
    assert run["args"]["ncycles"] == 10
    assert run["args"]["start_cycle"] == start


def test_specializer_emits_compile_span_with_phases():
    """SimJIT specialization emits a simjit.compile span carrying the
    cache_hit attribute, with the per-phase timers (elab/cgen/comp/...)
    nested inside it."""
    from repro.components import Register
    from repro.core.simjit import SimJITRTL

    tracer = tracing.arm()
    SimJITRTL(Register(8).elaborate()).specialize()
    tracing.disarm()

    by_name = {}
    for rec in tracer.events:
        by_name.setdefault(rec["name"], []).append(rec)
    assert "simjit.compile" in by_name, sorted(by_name)
    compile_rec = by_name["simjit.compile"][0]
    assert isinstance(compile_rec["args"]["cache_hit"], bool)
    # The specializer's phase timers land inside the compile span.
    phases = [n for n in by_name
              if n.startswith("simjit.") and n != "simjit.compile"]
    assert phases, sorted(by_name)
    lo = compile_rec["ts"]
    hi = lo + compile_rec["dur"]
    for name in phases:
        for rec in by_name[name]:
            assert lo <= rec["ts"] <= rec["ts"] + rec["dur"] <= hi


def test_watchdog_fire_emits_instant():
    tracer = tracing.arm()
    sim = SimulationTool(_TickModel().elaborate())
    sim.reset()
    wd = Watchdog(sim, max_cycles=32, check_every=16)
    with pytest.raises(WatchdogTimeout):
        wd.run(1000)
    tracing.disarm()
    fires = [r for r in tracer.events if r["name"] == "watchdog.fire"]
    assert len(fires) == 1
    assert fires[0]["ph"] == "i"
    assert fires[0]["args"]["kind"] == "cycle-budget"
    assert fires[0]["args"]["cycle"] == sim.ncycles


def test_profiler_ingests_spans_with_self_time():
    """Span-fed phase attribution: each span contributes duration
    minus enclosed children, so totals add up instead of
    double-counting — the path that works under SimJIT, where the
    interpreted per-phase timers never run."""
    pid, tid = 1, 1
    records = [
        {"name": "sim.run", "ph": "X", "ts": 0, "dur": 2_000_000_000,
         "pid": pid, "tid": tid, "depth": 0, "args": {"ncycles": 100}},
        {"name": "simjit.compile", "ph": "X", "ts": 200_000_000,
         "dur": 500_000_000, "pid": pid, "tid": tid, "depth": 1,
         "args": None},
        {"name": "watchdog.fire", "ph": "i", "ts": 1_000_000_000,
         "pid": pid, "tid": tid, "depth": 1, "args": None},
    ]
    prof = SimProfiler().ingest_spans(records)
    assert prof.phase_time["sim.run"] == pytest.approx(1.5)
    assert prof.phase_time["simjit.compile"] == pytest.approx(0.5)
    assert prof.cycles == 100
    assert prof.total_time == pytest.approx(2.0)
    assert prof.cycles_per_sec == pytest.approx(50.0)


def test_profiler_from_tracer_roundtrip():
    tracer = Tracer()
    with tracer.span("sim.run", ncycles=7):
        with tracer.span("simjit.compile"):
            pass
    prof = SimProfiler.from_tracer(tracer)
    assert prof.cycles == 7
    assert prof.phase_time["sim.run"] >= 0.0
    assert "simjit.compile" in prof.phase_time
    assert "sim.run" in prof.summary()


def test_add_phases_is_deprecated():
    prof = SimProfiler()
    with pytest.warns(DeprecationWarning, match="add_phases"):
        prof.add_phases(settle_pre=0.25, tick=0.75)
    assert prof.cycles == 1
    assert prof.total_time == pytest.approx(1.0)
    assert prof.phase_time["tick"] == pytest.approx(0.75)


# -- 4. fleet observability plane ---------------------------------------------


def _tiny_campaign():
    """One task of each kind, sized for test wall clock."""
    return Campaign("trace-tiny", 7, [
        VerifSweepTask("verif/cache", scenario="cache", ntxns=30),
        FaultSweepTask("fault/link", npackets=30),
        BenchPointTask("bench/mesh", design="mesh_traffic",
                       params={"nrouters": 4, "rate": 0.2,
                               "ncycles": 120}),
    ])


_RUNS = {}


def _run(nworkers, trace):
    """Campaign runs are expensive; share them across assertions."""
    key = (nworkers, trace)
    if key not in _RUNS:
        _RUNS[key] = run_campaign(_tiny_campaign(), nworkers=nworkers,
                                  trace=trace)
    return _RUNS[key]


def test_report_bytes_identical_with_tracing_on():
    """The observability plane is pure side-channel: the deterministic
    repro-fleet-v1 report bytes cannot change with tracing on at any
    worker count."""
    baseline = _run(1, trace=False).report_json()
    for nworkers in (1, 2, 4):
        assert _run(nworkers, trace=True).report_json() == baseline
    report = json.loads(baseline)
    assert report["schema"] == "repro-fleet-v1"
    assert report["status"] == "ok"


def test_merged_campaign_trace_validates():
    res = _run(2, trace=True)
    trace = res.chrome_trace()
    events = traceevent.validate(trace)
    span_pids = {e["pid"] for e in events if e["ph"] == "X"}
    assert span_pids, "campaign trace has no spans"
    assert 1 <= len(span_pids) <= 2    # one pid track per worker
    # Every contributing pid gets exactly one name + sort index track
    # header; all spans rebase onto one shared non-negative timeline.
    for pid in span_pids:
        names = [e for e in events if e["ph"] == "M"
                 and e["name"] == "process_name" and e["pid"] == pid]
        assert len(names) == 1
        assert names[0]["args"]["name"].startswith("worker ")
    assert all(e["ts"] >= 0.0 for e in events if e["ph"] != "M")
    assert trace["metadata"]["campaign"] == "trace-tiny"


def test_task_spans_nest_the_simulation_phases():
    """Every fleet.task span encloses the elaborate/schedule/compile/
    run spans of the simulation it drove, per (pid, tid) interval
    containment — the nesting Perfetto renders."""
    res = _run(2, trace=True)
    records = [r for pid_recs in res.trace.spans_by_pid.values()
               for r in pid_recs]
    tasks = [r for r in records
             if r["name"] == "fleet.task" and r["ph"] == "X"]
    assert {t["args"]["task"] for t in tasks} \
        == {"verif/cache", "fault/link", "bench/mesh"}
    for task in tasks:
        lo, hi = task["ts"], task["ts"] + task["dur"]
        inside = {r["name"] for r in records
                  if r is not task and r["ph"] == "X"
                  and r["pid"] == task["pid"]
                  and r["tid"] == task["tid"]
                  and lo <= r["ts"] and r["ts"] + r["dur"] <= hi}
        for required in ("sim.elaborate", "sim.schedule",
                         "sim.compile", "sim.run"):
            assert required in inside, \
                (task["args"]["task"], sorted(inside))
        assert task["args"]["status"] == "ok"


def test_fleet_stats_task_kind_percentiles():
    res = _run(2, trace=True)
    kinds = res.stats["task_kinds"]
    assert set(kinds) == {"verif", "fault", "bench"}
    for stats in kinds.values():
        assert stats["count"] >= 1
        assert 0.0 <= stats["p50"] <= stats["p95"] <= stats["max"]
        assert stats["total"] >= stats["max"]


def test_collector_metrics_and_counters():
    res = _run(2, trace=True)
    collector = res.trace
    assert collector.metrics_by_pid
    assert collector.cycles > 0
    for snap in collector.metrics_by_pid.values():
        assert snap["tasks_done"] >= 1
        assert snap["rss_bytes"] > 0
    # Telemetry counters crossed the side-channel too.
    assert collector.counter_totals()


def test_trace_flag_off_means_no_collector():
    assert _run(1, trace=False).trace is None
    with pytest.raises(ValueError):
        _run(1, trace=False).chrome_trace()


def test_collector_is_arrival_order_free():
    """The merged trace depends only on record content, never on the
    order side-channel messages happened to arrive."""
    def mk_records(pid):
        return [{"name": "fleet.task", "ph": "X", "ts": 1000 * pid,
                 "dur": 500, "pid": pid, "tid": 1, "depth": 0,
                 "args": None},
                {"name": "sim.run", "ph": "X", "ts": 1000 * pid + 100,
                 "dur": 200, "pid": pid, "tid": 1, "depth": 1,
                 "args": {"ncycles": 5}}]

    messages = [
        ("spans", 11, mk_records(11)),
        ("spans", 12, mk_records(12)),
        ("metrics", 11, worker_snapshot(1, 0, 5)),
        ("metrics", 12, worker_snapshot(1, 0, 5)),
        ("dropped", 11, 2),
    ]
    forward, backward = LiveCollector(), LiveCollector()
    for msg in messages:
        forward.on_message(msg)
    for msg in reversed(messages):
        backward.on_message(msg)
    assert forward.chrome_trace() == backward.chrome_trace()
    assert forward.dropped_spans == 2
    with pytest.raises(ValueError):
        forward.on_message(("bogus", 1, None))


def test_ticker_writes_progress_line():
    stream = io.StringIO()
    ticker = Ticker(stream=stream, interval=0.0)
    collector = LiveCollector(ntasks=3, progress=ticker)
    collector.on_message(("metrics", 11, worker_snapshot(1, 0, 1000)))
    collector.task_finished(
        type("R", (), {"status": "ok"})())
    ticker.close()
    out = stream.getvalue()
    assert "[fleet] 1/3 tasks" in out
    assert "fail=0" in out
    assert out.endswith("\n")
