"""Tests for the MinRISC ISA, assembler, and processors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.proc import (
    AssemblerError,
    Instr,
    IsaSim,
    ProcCL,
    ProcFL,
    ProcRTL,
    assemble,
    decode,
    encode,
    run_program,
)

PROCS = [ProcFL, ProcCL, ProcRTL]


# -- encode/decode ----------------------------------------------------------


def test_encode_decode_rtype():
    instr = Instr("add", rd=1, rs1=2, rs2=3)
    assert decode(encode(instr)) == instr


def test_encode_decode_itype_negative_imm():
    instr = Instr("addi", rd=5, rs1=5, imm=-3)
    assert decode(encode(instr)) == instr


def test_encode_decode_jtype():
    instr = Instr("jal", imm=0x123)
    assert decode(encode(instr)) == instr


def test_decode_bad_opcode_raises():
    with pytest.raises(ValueError):
        decode(0x3D << 26)        # unassigned opcode


@given(st.sampled_from(["add", "sub", "mul", "slt"]),
       st.integers(0, 31), st.integers(0, 31), st.integers(0, 31))
def test_prop_rtype_roundtrip(op, rd, rs1, rs2):
    instr = Instr(op, rd=rd, rs1=rs1, rs2=rs2)
    assert decode(encode(instr)) == instr


@given(st.sampled_from(["addi", "lw", "beq", "xcel"]),
       st.integers(0, 31), st.integers(0, 31),
       st.integers(-0x8000, 0x7FFF))
def test_prop_itype_roundtrip(op, rd, rs1, imm):
    instr = Instr(op, rd=rd, rs1=rs1, imm=imm)
    assert decode(encode(instr)) == instr


# -- assembler -----------------------------------------------------------------


def test_assemble_simple():
    words = assemble("addi r1, r0, 5\nhalt")
    assert len(words) == 2
    assert decode(words[0]) == Instr("addi", rd=1, rs1=0, imm=5)


def test_assemble_labels_and_branches():
    words = assemble("""
        li   r1, 3
    loop:
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    """)
    branch = decode(words[2])
    assert branch.op == "bne"
    assert branch.imm == -2       # back to 'loop' relative to pc+1


def test_assemble_comments_and_blanks():
    words = assemble("""
        # a comment
        nop

        halt    # trailing comment
    """)
    assert len(words) == 2


def test_assemble_li_expands_large_constants():
    words = assemble("li r1, 0x12345678\nhalt")
    assert len(words) == 3        # lui + ori + halt


def test_assemble_mem_operands():
    words = assemble("lw r2, 8(r1)\nsw r2, -4(r3)\nhalt")
    lw = decode(words[0])
    assert (lw.op, lw.rd, lw.rs1, lw.imm) == ("lw", 2, 1, 8)
    sw = decode(words[1])
    assert (sw.op, sw.rd, sw.rs1, sw.imm) == ("sw", 2, 3, -4)


def test_disassemble_round_trip():
    from repro.proc import disassemble

    source = """
        li   r1, 10
    loop:
        addi r1, r1, -1
        lw   r2, 4(r1)
        sw   r2, -8(r3)
        bne  r1, r0, loop
        jal  6
        jr   r31
        xcel r5, r6, 2
        halt
    """
    words = assemble(source)
    text = disassemble(words)
    # Re-assembling the disassembly (stripping addresses, converting
    # branch targets back to labels is lossy, so just verify mnemonic
    # structure and field recovery).
    assert "addi r1, r1, -1" in text
    assert "lw r2, 4(r1)" in text
    assert "sw r2, -8(r3)" in text
    assert "jr r31" in text
    assert "xcel r5, r6, 2" in text
    assert text.count("\n") == len(words) - 1


def test_disassemble_unknown_word():
    from repro.proc import disassemble
    text = disassemble([0xF7FFFFFF])
    assert ".word 0xf7ffffff" in text


def test_assemble_errors():
    with pytest.raises(AssemblerError):
        assemble("bogus r1, r2")
    with pytest.raises(AssemblerError):
        assemble("addi r99, r0, 1")
    with pytest.raises(AssemblerError):
        assemble("beq r1, r0, missing_label")


# -- IsaSim -------------------------------------------------------------------------


def _isa_run(source, data=None):
    sim = IsaSim()
    sim.load_program(assemble(source))
    for addr, value in (data or {}).items():
        sim.write_mem(addr, value)
    sim.run()
    return sim


def test_isasim_arithmetic():
    sim = _isa_run("""
        li  r1, 6
        li  r2, 7
        mul r10, r1, r2
        halt
    """)
    assert sim.regs[10] == 42


def test_isasim_loop_sum():
    # sum 1..10 = 55
    sim = _isa_run("""
        li   r1, 10
        li   r10, 0
    loop:
        add  r10, r10, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    """)
    assert sim.regs[10] == 55


def test_isasim_memory():
    sim = _isa_run("""
        li  r1, 0x1000
        li  r2, 99
        sw  r2, 0(r1)
        lw  r10, 0(r1)
        halt
    """)
    assert sim.regs[10] == 99
    assert sim.read_mem(0x1000) == 99


def test_isasim_function_call():
    sim = _isa_run("""
        li   r1, 5
        jal  double
        mv   r10, r2
        halt
    double:
        add  r2, r1, r1
        jr   r31
    """)
    assert sim.regs[10] == 10


def test_isasim_r0_stays_zero():
    sim = _isa_run("""
        addi r0, r0, 7
        mv   r10, r0
        halt
    """)
    assert sim.regs[10] == 0


def test_isasim_signed_compare():
    sim = _isa_run("""
        li   r1, -1
        li   r2, 1
        slt  r10, r1, r2
        sltu r11, r1, r2
        halt
    """)
    assert sim.regs[10] == 1      # signed: -1 < 1
    assert sim.regs[11] == 0      # unsigned: 0xFFFFFFFF > 1


def test_isasim_xcel_dot_product():
    sim = IsaSim()
    sim.load_program(assemble("""
        li   r1, 4
        xcel r0, r1, 1       # size = 4
        li   r2, 0x1000
        xcel r0, r2, 2       # src0
        li   r3, 0x2000
        xcel r0, r3, 3       # src1
        xcel r10, r0, 0      # go
        halt
    """))
    for i in range(4):
        sim.write_mem(0x1000 + 4 * i, i + 1)       # [1,2,3,4]
        sim.write_mem(0x2000 + 4 * i, 10)          # [10,10,10,10]
    sim.run()
    assert sim.regs[10] == 100


def test_isasim_no_halt_raises():
    sim = IsaSim()
    sim.load_program(assemble("j 0"))
    with pytest.raises(RuntimeError):
        sim.run(max_instrs=100)


# -- port-based processors vs IsaSim ------------------------------------------------


KERNELS = {
    "arith": """
        li  r1, 21
        add r10, r1, r1
        halt
    """,
    "loop": """
        li   r1, 10
        li   r10, 0
    loop:
        add  r10, r10, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    """,
    "memory": """
        li  r1, 0x1000
        li  r2, 7
        sw  r2, 0(r1)
        lw  r3, 0(r1)
        add r10, r3, r3
        halt
    """,
    "call": """
        li   r1, 5
        jal  f
        mv   r10, r2
        halt
    f:
        mul  r2, r1, r1
        jr   r31
    """,
}


@pytest.mark.parametrize("proc_cls", PROCS)
@pytest.mark.parametrize("kernel", sorted(KERNELS))
def test_proc_matches_isasim(proc_cls, kernel):
    words = assemble(KERNELS[kernel])
    golden = IsaSim()
    golden.load_program(words)
    golden.run()
    harness, _ = run_program(proc_cls, words)
    assert harness.proc.regs[10] == golden.regs[10]


@pytest.mark.parametrize("proc_cls", PROCS)
def test_proc_instruction_counts_match(proc_cls):
    words = assemble(KERNELS["loop"])
    golden = IsaSim()
    golden.load_program(words)
    golden.run()
    harness, _ = run_program(proc_cls, words)
    assert harness.proc.num_instrs == golden.num_instrs


def test_cl_btb_predictor_speeds_up_loops():
    """The BTB predictor removes almost all loop-branch squashes."""
    from repro.core import SimulationTool
    from repro.proc.harness import ProcHarness

    words = assemble(KERNELS["loop"])
    golden = IsaSim()
    golden.load_program(words)
    golden.run()

    results = {}
    for predictor in ("static", "btb"):
        harness = ProcHarness(ProcCL(predictor=predictor)).elaborate()
        harness.mem.load(0, words)
        sim = SimulationTool(harness)
        sim.reset()
        while not int(harness.proc.done):
            sim.cycle()
            assert sim.ncycles < 100_000
        assert harness.proc.regs[10] == golden.regs[10]
        results[predictor] = (sim.ncycles, harness.proc.num_squashes)

    assert results["btb"][0] < results["static"][0]
    assert results["btb"][1] < results["static"][1]


def test_cl_unknown_predictor_rejected():
    with pytest.raises(ValueError):
        ProcCL(predictor="neural")


def test_cl_faster_than_rtl_on_straightline():
    """The CL processor pipelines fetches; the multicycle RTL core
    cannot: CL should retire the same program in fewer cycles."""
    words = assemble("\n".join(["addi r1, r1, 1"] * 30) + "\nhalt")
    _, cl_cycles = run_program(ProcCL, words)
    _, rtl_cycles = run_program(ProcRTL, words)
    assert cl_cycles < rtl_cycles


@pytest.mark.parametrize("proc_cls", PROCS)
def test_proc_tolerates_slow_memory(proc_cls):
    words = assemble(KERNELS["memory"])
    harness, _ = run_program(proc_cls, words, mem_latency=5)
    assert harness.proc.regs[10] == 14


@settings(max_examples=10, deadline=None)
@given(st.lists(st.integers(min_value=-100, max_value=100),
                min_size=1, max_size=5))
def test_prop_cl_proc_matches_isasim_on_random_arith(values):
    lines = []
    for i, value in enumerate(values):
        lines.append(f"li r{i + 1}, {value}")
    lines.append("li r10, 0")
    for i in range(len(values)):
        lines.append(f"add r10, r10, r{i + 1}")
    lines.append("halt")
    words = assemble("\n".join(lines))
    golden = IsaSim()
    golden.load_program(words)
    golden.run()
    harness, _ = run_program(ProcCL, words)
    assert harness.proc.regs[10] == golden.regs[10]
