"""Unit tests for port bundles and their connection semantics."""

import pytest

from repro import (
    ChildReqRespBundle,
    InPort,
    InValRdyBundle,
    Model,
    OutPort,
    OutValRdyBundle,
    ParentReqRespBundle,
    ReqRespMsgTypes,
    SimulationTool,
)
from repro.mem import MemMsg


def test_invalrdy_directions():
    bundle = InValRdyBundle(8)
    assert isinstance(bundle.msg, InPort)
    assert isinstance(bundle.val, InPort)
    assert isinstance(bundle.rdy, OutPort)


def test_outvalrdy_directions():
    bundle = OutValRdyBundle(8)
    assert isinstance(bundle.msg, OutPort)
    assert isinstance(bundle.val, OutPort)
    assert isinstance(bundle.rdy, InPort)


def test_bundle_array_shorthand():
    bundles = InValRdyBundle[3](8)
    assert len(bundles) == 3
    assert all(isinstance(b, InValRdyBundle) for b in bundles)


def test_named_signals():
    bundle = InValRdyBundle(8)
    names = dict(bundle.get_named_signals())
    assert set(names) == {"msg", "val", "rdy"}


def test_reqresp_bundle_structure():
    ifc = MemMsg()
    child = ChildReqRespBundle(ifc)
    parent = ParentReqRespBundle(ifc)
    # child receives requests, parent sends them.
    assert isinstance(child.req_msg, InPort)
    assert isinstance(child.resp_msg, OutPort)
    assert isinstance(parent.req_msg, OutPort)
    assert isinstance(parent.resp_msg, InPort)
    # flat aliases share the bundle signals.
    assert child.req_msg is child.req.msg
    assert parent.resp_rdy is parent.resp.rdy


def test_reqresp_named_signals_have_no_alias_duplicates():
    bundle = ChildReqRespBundle(MemMsg())
    names = [name for name, _ in bundle.get_named_signals()]
    assert len(names) == len(set(names)) == 6


def test_bundle_to_bundle_connect():
    class Top(Model):
        def __init__(s):
            s.a = OutValRdyBundle(8)
            s.b = InValRdyBundle(8)
            s.connect(s.a, s.b)

    model = Top().elaborate()
    assert model.a.msg._net is model.b.msg._net
    assert model.a.val._net is model.b.val._net
    assert model.a.rdy._net is model.b.rdy._net


def test_parent_child_reqresp_connect_and_simulate():
    """A parent requester and a child responder wired bundle-to-bundle
    must see each other's signals."""
    ifc = MemMsg()

    class Top(Model):
        def __init__(s):
            s.parent = ParentReqRespBundle(ifc)
            s.child = ChildReqRespBundle(ifc)
            s.connect(s.parent.req, s.child.req)
            s.connect(s.child.resp, s.parent.resp)

    model = Top().elaborate()
    SimulationTool(model)
    model.parent.req_val.value = 1
    assert int(model.child.req_val) == 1
    model.child.resp_msg.value = 0x42
    assert int(model.parent.resp_msg) == 0x42


def test_mismatched_bundles_rejected():
    class Bad(Model):
        def __init__(s):
            s.a = OutValRdyBundle(8)
            s.b = ChildReqRespBundle(MemMsg())
            s.connect(s.a, s.b)

    with pytest.raises(TypeError):
        Bad()


def test_valrdy_trace_states():
    bundle = OutValRdyBundle(8)
    bundle.msg.name = "msg"
    # idle
    assert bundle.to_str().strip() == ""
    # stalled (val, no rdy)
    bundle.val.value = 1
    assert "#" in bundle.to_str()
    # firing
    bundle.rdy.value = 1
    bundle.msg.value = 0xAB
    assert "ab" in bundle.to_str()


def test_reqresp_msg_types_holder():
    types = ReqRespMsgTypes(int, str)
    assert types.req is int
    assert types.resp is str
