"""Unit tests for the queue adapters and the blocking memory proxy."""

import numpy
import pytest

from repro import (
    ChildReqRespBundle,
    ChildReqRespQueueAdapter,
    ListMemPortAdapter,
    Model,
    OutPort,
    ParentReqRespBundle,
    ParentReqRespQueueAdapter,
    Queue,
    SimulationTool,
)
from repro.mem import MemMsg, TestMemory
from repro.accel.msgs import XcelMsg, XcelReqMsg


# -- Queue ------------------------------------------------------------------


def test_queue_fifo_order():
    q = Queue(3)
    for i in (1, 2, 3):
        q.enq(i)
    assert q.full()
    assert [q.deq() for _ in range(3)] == [1, 2, 3]
    assert q.empty()


def test_queue_overflow_underflow_raise():
    q = Queue(1)
    with pytest.raises(IndexError):
        q.deq()
    q.enq(1)
    with pytest.raises(IndexError):
        q.enq(2)
    with pytest.raises(IndexError):
        Queue(1).front()


def test_queue_front_peeks():
    q = Queue(2)
    q.enq(7)
    assert q.front() == 7
    assert len(q) == 1


# -- child/parent queue adapters talking to each other ---------------------------


class _Echo(Model):
    """Child device echoing request data + 1 as the response."""

    def __init__(s, ifc):
        s.cpu_ifc = ChildReqRespBundle(ifc)
        s.cpu = ChildReqRespQueueAdapter(s.cpu_ifc)

        @s.tick_fl
        def logic():
            s.cpu.xtick()
            if not s.cpu.req_q.empty() and not s.cpu.resp_q.full():
                req = s.cpu.get_req()
                s.cpu.push_resp(int(req.data) + 1)


class _Requester(Model):
    """Parent sending a fixed list of requests, collecting responses."""

    def __init__(s, ifc, payloads):
        s.ifc = ParentReqRespBundle(ifc)
        s.mem = ParentReqRespQueueAdapter(s.ifc)
        s.payloads = list(payloads)
        s.responses = []
        s.done = OutPort(1)

        @s.tick_fl
        def logic():
            s.mem.xtick()
            if s.payloads and not s.mem.req_q.full():
                s.mem.push_req(XcelReqMsg.mk(1, s.payloads.pop(0)))
            if not s.mem.resp_q.empty():
                s.responses.append(int(s.mem.get_resp().data))
            s.done.next = not s.payloads and s.mem.resp_q.empty() \
                and s.mem.req_q.empty()


def test_adapters_end_to_end():
    ifc = XcelMsg()

    class Top(Model):
        def __init__(s):
            s.req = _Requester(ifc, [10, 20, 30])
            s.echo = _Echo(ifc)
            s.connect(s.req.ifc.req, s.echo.cpu_ifc.req)
            s.connect(s.echo.cpu_ifc.resp, s.req.ifc.resp)

    top = Top().elaborate()
    sim = SimulationTool(top)
    sim.reset()
    for _ in range(100):
        sim.cycle()
        if len(top.req.responses) == 3:
            break
    assert top.req.responses == [11, 21, 31]


# -- ListMemPortAdapter (blocking proxy) -----------------------------------------


class _SumDevice(Model):
    """FL device that sums a memory-resident vector on 'go'."""

    def __init__(s, mem_ifc, cpu_ifc):
        s.cpu_ifc = ChildReqRespBundle(cpu_ifc)
        s.mem_ifc = ParentReqRespBundle(mem_ifc)
        s.cpu = ChildReqRespQueueAdapter(s.cpu_ifc)
        s.vec = ListMemPortAdapter(s.mem_ifc)

        @s.tick_fl
        def logic():
            s.cpu.xtick()
            if not s.cpu.req_q.empty() and not s.cpu.resp_q.full():
                req = s.cpu.get_req()
                if req.ctrl_msg == 1:
                    s.vec.set_size(int(req.data))
                elif req.ctrl_msg == 2:
                    s.vec.set_base(int(req.data))
                elif req.ctrl_msg == 0:
                    total = int(numpy.sum(
                        numpy.array(list(s.vec), dtype=object)))
                    s.cpu.push_resp(total & 0xFFFFFFFF)


class _SumHarness(Model):
    def __init__(s):
        s.dev = _SumDevice(MemMsg(), XcelMsg())
        s.mem = TestMemory(nports=1, latency=2, size=1 << 16)
        s.connect(s.dev.mem_ifc.req, s.mem.ports[0].req)
        s.connect(s.dev.mem_ifc.resp, s.mem.ports[0].resp)


def _drive_xcel(sim, port, ctrl, data, await_resp, max_cycles=2000):
    port.req_msg.value = XcelReqMsg.mk(ctrl, data)
    port.req_val.value = 1
    for _ in range(max_cycles):
        accepted = int(port.req_val) and int(port.req_rdy)
        sim.cycle()
        if accepted:
            break
    port.req_val.value = 0
    if not await_resp:
        return None
    port.resp_rdy.value = 1
    for _ in range(max_cycles):
        if int(port.resp_val):
            value = int(port.resp_msg.value.data)
            sim.cycle()
            port.resp_rdy.value = 0
            return value
        sim.cycle()
    raise AssertionError("no response")


def test_list_mem_port_adapter_with_numpy():
    """The paper's headline FL trick: numpy operates directly on a
    proxy whose element accesses become memory transactions."""
    harness = _SumHarness().elaborate()
    sim = SimulationTool(harness)
    sim.reset()
    harness.mem.load(0x1000, [5, 10, 15, 20])
    port = harness.dev.cpu_ifc
    _drive_xcel(sim, port, 1, 4, await_resp=False)
    _drive_xcel(sim, port, 2, 0x1000, await_resp=False)
    assert _drive_xcel(sim, port, 0, 0, await_resp=True) == 50


def test_list_mem_port_adapter_write_and_slice():
    harness = _SumHarness().elaborate()
    sim = SimulationTool(harness)
    sim.reset()
    adapter = harness.dev.vec
    adapter.set_base(0x2000)
    adapter.set_size(3)
    assert len(adapter) == 3
    with pytest.raises(RuntimeError):
        adapter[0]          # blocking access outside an FL block


def test_exception_in_blocking_fl_block_propagates():
    """An exception inside a worker-thread FL block must surface in
    the simulator thread, not deadlock the handoff (regression)."""
    from repro.core import Model, SimulationTool

    class Exploding(Model):
        def __init__(s):
            s.mem_ifc = ParentReqRespBundle(MemMsg())
            s.proxy = ListMemPortAdapter(s.mem_ifc)

            @s.tick_fl
            def logic():
                raise RuntimeError("boom in FL block")

    model = Exploding().elaborate()
    sim = SimulationTool(model)
    with pytest.raises(RuntimeError, match="boom"):
        for _ in range(5):
            sim.cycle()


def test_adapter_reuse_across_go_requests():
    harness = _SumHarness().elaborate()
    sim = SimulationTool(harness)
    sim.reset()
    harness.mem.load(0x1000, [1, 2, 3])
    harness.mem.load(0x3000, [100, 200])
    port = harness.dev.cpu_ifc
    _drive_xcel(sim, port, 1, 3, await_resp=False)
    _drive_xcel(sim, port, 2, 0x1000, await_resp=False)
    assert _drive_xcel(sim, port, 0, 0, await_resp=True) == 6
    _drive_xcel(sim, port, 1, 2, await_resp=False)
    _drive_xcel(sim, port, 2, 0x3000, await_resp=False)
    assert _drive_xcel(sim, port, 0, 0, await_resp=True) == 300
