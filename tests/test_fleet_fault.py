"""Fault-tolerant fleet properties: chaos survival, retry/backoff,
quarantine, journaling/resume, interruption, and budget watchdogs.

The supervisor's headline contract extends the fleet determinism
property into the failure domain:

1. **Chaos convergence** — a campaign with deterministically injected
   worker kills / hangs / allocation spikes converges, via bounded
   retry, to the *exact report bytes* of an undisturbed run.
2. **Quarantine** — a task that keeps killing its worker becomes a
   structured, deterministic ``"poisoned"`` result instead of hanging
   or crashing the campaign.
3. **Journal/resume** — every completion is write-ahead-logged;
   ``run_campaign(..., resume=path)`` replays completed tasks without
   re-executing them and reproduces byte-identical report output.
4. **Interruption** — Ctrl-C yields a partial ``FleetResult`` (status
   ``"interrupted"``) with the pool torn down, not a traceback.
5. **Budgets** — ``wall_budget`` converts in-worker hangs into
   transient (retryable) ``"timeout"`` results; ``cycle_budget``
   converts livelocks into deterministic ones.
"""

import json
import os
import signal
import threading
import time

import pytest

from repro.fleet import (
    BenchPointTask,
    Campaign,
    CampaignTask,
    ChaosEvent,
    ChaosPlan,
    FleetContext,
    Journal,
    JournalError,
    RetryPolicy,
    TaskResult,
    VerifSweepTask,
    aggregate,
    report_json,
    run_campaign,
)
from repro.fleet.journal import result_to_dict

SEED = 11


class TinyTask(CampaignTask):
    """Cheap deterministic task: payload depends only on the task's
    RNG substream, so chaos/retry/journal tests stay fast while the
    byte-identity assertions stay meaningful."""

    kind = "tiny"

    def __init__(self, task_id, **kwargs):
        super().__init__(task_id, **kwargs)

    def run(self, rng, ctx):
        draws = [rng.randint(0, 999) for _ in range(4)]
        if ctx.artifact_dir:
            # Execution witness for the no-re-execution assertions.
            with open(os.path.join(ctx.artifact_dir, "runs.log"),
                      "a") as f:
                f.write(self.task_id + "\n")
        payload = {"draws": draws, "sum": sum(draws)}
        coverage = {"tiny": {f"bin{draws[0] % 4}": 1}}
        telemetry = {"counters": {"tiny.runs": 1}, "histograms": {}}
        return payload, coverage, telemetry


class SleepTask(CampaignTask):
    """Sleeps; for wall-budget and interruption tests."""

    kind = "sleep"

    def __init__(self, task_id, seconds, **kwargs):
        super().__init__(task_id, **kwargs)
        self.seconds = float(seconds)

    def run(self, rng, ctx):
        time.sleep(self.seconds)
        return {"slept": self.seconds}, {}, {}


class InterruptingTask(CampaignTask):
    """Raises KeyboardInterrupt (when armed via env var) to simulate a
    Ctrl-C landing mid-campaign in the inline runner."""

    kind = "interrupting"

    ARM = "TEST_FLEET_INTERRUPT"

    def run(self, rng, ctx):
        if os.environ.get(self.ARM):
            raise KeyboardInterrupt
        return {"value": rng.randint(0, 999)}, {}, {}


def _tiny_campaign(seed=SEED, n=6, **task_kwargs):
    return Campaign("fault-tiny", seed,
                    [TinyTask(f"tiny/{i}", **task_kwargs)
                     for i in range(n)])


def _runs_log(artifact_dir):
    path = os.path.join(artifact_dir, "runs.log")
    if not os.path.exists(path):
        return []
    with open(path) as f:
        return f.read().splitlines()


def _chaos(events):
    return ChaosPlan(events)


# -- retry policy -------------------------------------------------------------


def test_retry_policy_backoff_deterministic_and_bounded():
    policy = RetryPolicy(max_attempts=4, base_delay=0.1, max_delay=1.0)
    for seed in (1, 42, 0xDEAD):
        delays = [policy.delay(seed, a) for a in (1, 2, 3)]
        # Deterministic: same (seed, attempt) -> same delay.
        assert delays == [policy.delay(seed, a) for a in (1, 2, 3)]
        # Exponential envelope with jitter in [0.5, 1.0] x base.
        for attempt, delay in enumerate(delays, start=1):
            base = min(1.0, 0.1 * 2 ** (attempt - 1))
            assert 0.5 * base <= delay <= base
    # Distinct tasks de-correlate (jitter spreads the herd).
    assert len({round(policy.delay(s, 1), 9)
                for s in range(50)}) > 10
    # max_delay caps the exponent.
    assert policy.delay(7, 30) <= 1.0


def test_retry_policy_retries_only_transient_results():
    policy = RetryPolicy(max_attempts=3)

    def res(status, diagnostics=None):
        return TaskResult(task_id="t", kind="tiny", status=status,
                          seed=1, diagnostics=diagnostics)

    transient = res("timeout", {"transient": True})
    assert policy.should_retry_result(transient, 1)
    assert policy.should_retry_result(transient, 2)
    assert not policy.should_retry_result(transient, 3)   # exhausted
    # Deterministic timeouts (cycle budget) and other statuses: final.
    assert not policy.should_retry_result(res("timeout"), 1)
    assert not policy.should_retry_result(res("mismatch"), 1)
    assert not policy.should_retry_result(res("error"), 1)


# -- chaos convergence --------------------------------------------------------


def test_chaos_kill_converges_to_undisturbed_report_bytes():
    """SIGKILL a worker mid-task on the first attempt: the supervisor
    detects the death, respawns, retries, and the final report bytes
    match a run with no chaos at all."""
    baseline = run_campaign(_tiny_campaign(), nworkers=2).report_json()

    plan = _chaos([ChaosEvent(task=None, index=1, mode="kill"),
                   ChaosEvent(task=None, index=4, mode="kill")])
    plan.resolve(_tiny_campaign()).install()
    try:
        res = run_campaign(
            _tiny_campaign(), nworkers=2,
            retry=RetryPolicy(max_attempts=3, base_delay=0.01))
    finally:
        ChaosPlan.uninstall()

    assert res.report_json() == baseline
    assert res.report["status"] == "ok"
    assert res.stats["retries"] >= 2
    assert res.stats["respawns"] >= 2
    assert not res.stats["quarantined"]
    # The attempt log names the injected crashes.
    assert res.stats["attempts"]["tiny/1"][0]["reason"] == "crash"
    assert res.stats["attempts"]["tiny/1"][0]["exit_signal"] \
        == "SIGKILL"


def test_chaos_spike_is_absorbed_without_report_impact():
    baseline = run_campaign(_tiny_campaign(), nworkers=2).report_json()
    plan = _chaos([ChaosEvent(task=None, index=0, mode="spike",
                              mbytes=8)])
    plan.resolve(_tiny_campaign()).install()
    try:
        res = run_campaign(_tiny_campaign(), nworkers=2)
    finally:
        ChaosPlan.uninstall()
    assert res.report_json() == baseline
    assert res.stats["retries"] == 0


def test_chaos_soft_hang_becomes_transient_timeout_then_retries():
    """An interruptible hang under a wall_budget: the in-worker SIGALRM
    watchdog converts it to a transient timeout, the supervisor retries
    it, and the clean second attempt restores byte-identity."""
    camp = _tiny_campaign(wall_budget=5.0)
    baseline = run_campaign(camp, nworkers=2).report_json()

    plan = _chaos([ChaosEvent(task="tiny/2", mode="hang",
                              seconds=30.0)])
    chaos_camp = Campaign("fault-tiny", SEED, [
        TinyTask(f"tiny/{i}",
                 wall_budget=(0.3 if i == 2 else 5.0))
        for i in range(6)])
    plan.install()
    try:
        res = run_campaign(
            chaos_camp, nworkers=2,
            retry=RetryPolicy(max_attempts=3, base_delay=0.01))
    finally:
        ChaosPlan.uninstall()

    # wall_budget differs between the two campaigns but budgets are
    # never part of the result payload, so bytes still match.
    assert res.report_json() == baseline
    assert res.stats["retries"] >= 1
    assert res.stats["attempts"]["tiny/2"][0]["reason"] == "timeout"


def test_chaos_hard_hang_reclaimed_by_supervisor_deadline():
    """A hang that masks SIGALRM: only the process-level task deadline
    can reclaim the worker.  Kill + respawn + retry -> byte-identity."""
    baseline = run_campaign(_tiny_campaign(), nworkers=2).report_json()
    plan = _chaos([ChaosEvent(task="tiny/0", mode="hang_hard",
                              seconds=30.0)])
    plan.install()
    try:
        res = run_campaign(
            _tiny_campaign(), nworkers=2, task_deadline=1.0,
            retry=RetryPolicy(max_attempts=3, base_delay=0.01))
    finally:
        ChaosPlan.uninstall()

    assert res.report_json() == baseline
    assert res.stats["retries"] >= 1
    # (A respawn only happens when remaining work exceeds the live
    # workers; with quick siblings the survivor may finish the queue.)
    assert res.stats["attempts"]["tiny/0"][0]["reason"] == "deadline"


def test_inline_runner_retries_transient_timeouts_too():
    """The nworkers=1 path shares the retry pipeline: a first-attempt
    hang trips the alarm, the retry runs clean, report bytes match."""
    camp = _tiny_campaign(n=3, wall_budget=0.3)
    baseline = run_campaign(camp, nworkers=1).report_json()
    plan = _chaos([ChaosEvent(task="tiny/1", mode="hang",
                              seconds=30.0)])
    plan.install()
    try:
        res = run_campaign(
            _tiny_campaign(n=3, wall_budget=0.3), nworkers=1,
            retry=RetryPolicy(max_attempts=3, base_delay=0.01))
    finally:
        ChaosPlan.uninstall()
    assert res.report_json() == baseline
    assert res.stats["retries"] == 1


# -- quarantine ---------------------------------------------------------------


def test_worker_killing_task_quarantined_as_poisoned():
    """A task that SIGKILLs its worker on *every* attempt exhausts the
    retry budget and lands in the report as a deterministic
    ``"poisoned"`` result; sibling tasks are unharmed."""
    plan = _chaos([ChaosEvent(task="tiny/3", mode="kill",
                              attempts=99)])

    def run_once():
        plan.install()
        try:
            return run_campaign(
                _tiny_campaign(), nworkers=2,
                retry=RetryPolicy(max_attempts=2, base_delay=0.01))
        finally:
            ChaosPlan.uninstall()

    res = run_once()
    report = res.report
    assert report["status"] == "failed"
    assert report["failures"] == ["tiny/3"]
    assert report["counts"]["poisoned"] == 1
    assert report["counts"]["ok"] == 5
    assert res.stats["quarantined"] == ["tiny/3"]

    entry = report["tasks"]["tiny/3"]
    assert entry["status"] == "poisoned"
    diag = entry["diagnostics"]
    assert diag["attempts"] == 2
    assert [f["reason"] for f in diag["failures"]] == ["crash", "crash"]
    assert all(f["exit"] == "SIGKILL" for f in diag["failures"])
    # The worker heartbeated the assignment before dying.
    assert diag["last_heartbeat"] == {"attempt": 2, "event": "start"}

    # Poisoned results are deterministic: a second sabotaged run
    # produces the same report bytes.
    assert run_once().report_json() == res.report_json()


def test_quarantine_writes_forensics_artifact(tmp_path):
    art = str(tmp_path / "artifacts")
    plan = _chaos([ChaosEvent(task="tiny/0", mode="kill",
                              attempts=99)])
    plan.install()
    try:
        run_campaign(_tiny_campaign(n=2), nworkers=2,
                     artifact_dir=art,
                     retry=RetryPolicy(max_attempts=2,
                                       base_delay=0.01))
    finally:
        ChaosPlan.uninstall()
    path = os.path.join(art, "quarantine_tiny_0.json")
    assert os.path.exists(path)
    with open(path) as f:
        forensics = json.load(f)
    assert forensics["task_id"] == "tiny/0"
    assert len(forensics["attempt_log"]) == 2
    # Wall-clock timings belong here, never in the report.
    assert all("elapsed" in a for a in forensics["attempt_log"])


def test_exhausted_transient_timeouts_keep_last_timeout_result():
    """Hangs on every attempt + wall_budget: retries exhaust and the
    final structured timeout result (not poisoned) lands in the
    report, still byte-deterministically."""
    plan = _chaos([ChaosEvent(task="tiny/1", mode="hang",
                              attempts=99, seconds=30.0)])

    def run_once():
        plan.install()
        try:
            return run_campaign(
                _tiny_campaign(n=3, wall_budget=0.3), nworkers=2,
                retry=RetryPolicy(max_attempts=2, base_delay=0.01))
        finally:
            ChaosPlan.uninstall()

    res = run_once()
    entry = res.report["tasks"]["tiny/1"]
    assert entry["status"] == "timeout"
    assert entry["diagnostics"]["transient"] is True
    assert entry["diagnostics"]["watchdog"]["kind"] == "wall-budget"
    assert res.report["counts"]["timeout"] == 1
    assert res.stats["retries"] == 1
    assert run_once().report_json() == res.report_json()


# -- journal / resume ---------------------------------------------------------


def test_journal_records_every_completion(tmp_path):
    path = str(tmp_path / "campaign.jsonl")
    res = run_campaign(_tiny_campaign(), nworkers=2, journal=path)
    header, loaded = Journal.load(path)
    assert header["schema"] == "repro-fleet-journal-v1"
    assert header["campaign"] == "fault-tiny"
    assert set(loaded) == {t.task_id for t in _tiny_campaign().tasks}
    # Journal-loaded results aggregate to the same bytes.
    assert report_json(aggregate(res.campaign,
                                 list(loaded.values()))) \
        == res.report_json()


def test_resume_replays_completed_tasks_without_reexecution(tmp_path):
    """Seed a journal with a 3-task prefix of completions, resume, and
    check (a) byte-identical final report, (b) only the remaining
    tasks actually execute."""
    camp = _tiny_campaign()
    art_full = str(tmp_path / "full")
    baseline = run_campaign(camp, nworkers=2, artifact_dir=art_full)
    assert sorted(_runs_log(art_full)) \
        == sorted(t.task_id for t in camp.tasks)

    path = str(tmp_path / "campaign.jsonl")
    prefix = {r.task_id: r for r in baseline.results[:3]}
    with Journal.create(path, camp) as j:
        for r in prefix.values():
            j.append(r)

    art_resume = str(tmp_path / "resumed")
    res = run_campaign(_tiny_campaign(), nworkers=2, resume=path,
                       artifact_dir=art_resume)
    assert res.report_json() == baseline.report_json()
    assert res.stats["resumed"] == sorted(prefix)
    # Only the non-journaled tasks ran.
    assert sorted(_runs_log(art_resume)) == sorted(
        t.task_id for t in camp.tasks if t.task_id not in prefix)
    # The journal now holds the full campaign.
    _, loaded = Journal.load(path)
    assert set(loaded) == {t.task_id for t in camp.tasks}


def test_resume_of_complete_journal_runs_nothing(tmp_path):
    path = str(tmp_path / "campaign.jsonl")
    baseline = run_campaign(_tiny_campaign(), nworkers=2,
                            journal=path)
    art = str(tmp_path / "resumed")
    res = run_campaign(_tiny_campaign(), nworkers=2, resume=path,
                       artifact_dir=art)
    assert res.report_json() == baseline.report_json()
    assert len(res.stats["resumed"]) == len(baseline.results)
    assert _runs_log(art) == []                   # nothing re-executed


def test_resume_rejects_foreign_journal(tmp_path):
    path = str(tmp_path / "campaign.jsonl")
    run_campaign(_tiny_campaign(seed=SEED), nworkers=1, journal=path)
    with pytest.raises(JournalError):
        Journal.resume(path, _tiny_campaign(seed=SEED + 1))
    with pytest.raises(JournalError):
        Journal.resume(path, _tiny_campaign(seed=SEED, n=4))


def test_journal_tolerates_torn_tail_but_not_interior_damage(
        tmp_path):
    path = str(tmp_path / "campaign.jsonl")
    run_campaign(_tiny_campaign(), nworkers=1, journal=path)
    with open(path) as f:
        text = f.read()
    # Torn tail: a crash mid-append leaves a partial last line.
    torn = str(tmp_path / "torn.jsonl")
    with open(torn, "w") as f:
        f.write(text[:-20])
    _, loaded = Journal.load(torn)
    assert len(loaded) == len(_tiny_campaign().tasks) - 1
    # Interior corruption must refuse to resume.
    lines = text.splitlines()
    lines[2] = lines[2][:10]
    bad = str(tmp_path / "bad.jsonl")
    with open(bad, "w") as f:
        f.write("\n".join(lines) + "\n")
    with pytest.raises(JournalError):
        Journal.load(bad)


def test_interrupted_chaos_run_resumes_to_identical_bytes(tmp_path):
    """The flagship end-to-end: chaos + interruption + resume still
    converge to the undisturbed report bytes."""
    camp = _tiny_campaign()
    baseline = run_campaign(camp, nworkers=2).report_json()

    path = str(tmp_path / "campaign.jsonl")
    # Phase 1: journal a 3-task prefix, as an interrupted run would.
    with Journal.create(path, camp) as j:
        ctx = FleetContext(camp.seed, None)
        for task in camp.tasks[:3]:
            j.append(task.execute(camp.seed, ctx))

    # Phase 2: resume under chaos; the remaining 3 tasks run, one of
    # them sabotaged on its first attempt.
    plan = _chaos([ChaosEvent(task="tiny/4", mode="kill")])
    plan.install()
    try:
        res = run_campaign(
            _tiny_campaign(), nworkers=2, resume=path,
            retry=RetryPolicy(max_attempts=3, base_delay=0.01))
    finally:
        ChaosPlan.uninstall()
    assert res.report_json() == baseline
    assert res.stats["resumed"] == ["tiny/0", "tiny/1", "tiny/2"]
    assert res.stats["retries"] >= 1


# -- interruption (satellite 1) -----------------------------------------------


def test_inline_interrupt_returns_partial_result(tmp_path):
    """A KeyboardInterrupt mid-campaign (inline runner) yields a
    partial FleetResult with the journal flushed, not a traceback."""
    camp = Campaign("interruptible", SEED, [
        TinyTask("tiny/0"),
        TinyTask("tiny/1"),
        InterruptingTask("boom"),
        TinyTask("tiny/2"),
    ])
    path = str(tmp_path / "campaign.jsonl")
    os.environ[InterruptingTask.ARM] = "1"
    try:
        res = run_campaign(camp, nworkers=1, journal=path)
    finally:
        os.environ.pop(InterruptingTask.ARM, None)

    assert res.interrupted
    assert res.stats["interrupted"] is True
    assert res.report["status"] == "interrupted"
    assert res.report["missing"] == ["boom", "tiny/2"]
    assert set(res.report["tasks"]) == {"tiny/0", "tiny/1"}
    # The journal durably holds exactly the completed prefix.
    _, loaded = Journal.load(path)
    assert set(loaded) == {"tiny/0", "tiny/1"}

    # Resume (with the interrupting task disarmed) completes the
    # campaign; the report matches a never-interrupted run.
    clean = run_campaign(camp, nworkers=1)
    resumed = run_campaign(camp, nworkers=1, resume=path)
    assert resumed.report_json() == clean.report_json()
    assert not resumed.interrupted


def test_pool_interrupt_tears_down_workers_and_returns_partial():
    """SIGINT during a supervised run: workers are terminated, no
    child processes leak, and the partial result reports honestly."""
    import multiprocessing

    camp = Campaign("sigint", SEED,
                    [SleepTask(f"sleep/{i}", seconds=0.8)
                     for i in range(4)])
    timer = threading.Timer(
        0.5, lambda: os.kill(os.getpid(), signal.SIGINT))
    timer.start()
    try:
        res = run_campaign(camp, nworkers=2)
    finally:
        timer.cancel()

    assert res.interrupted
    assert res.report["status"] == "interrupted"
    assert len(res.report["missing"]) >= 1
    # The supervisor's shutdown reaped every worker process.
    deadline = time.monotonic() + 5.0
    while multiprocessing.active_children() \
            and time.monotonic() < deadline:
        time.sleep(0.05)
    assert multiprocessing.active_children() == []


# -- budgets (satellite 2) ----------------------------------------------------


def test_wall_budget_converts_hang_to_transient_timeout():
    task = SleepTask("sleep/long", seconds=10.0, wall_budget=0.2)
    ctx = FleetContext(SEED, None)
    start = time.monotonic()
    res = task.execute(SEED, ctx)
    assert time.monotonic() - start < 5.0        # alarm actually fired
    assert res.status == "timeout"
    assert res.diagnostics["transient"] is True
    assert res.diagnostics["watchdog"]["kind"] == "wall-budget"
    assert "wall budget" in res.diagnostics["message"]


def test_wall_budget_noop_when_task_finishes_in_time():
    task = SleepTask("sleep/short", seconds=0.01, wall_budget=5.0)
    res = task.execute(SEED, FleetContext(SEED, None))
    assert res.status == "ok"
    # The alarm was disarmed on exit: no pending SIGALRM handler.
    assert signal.getsignal(signal.SIGALRM) in (
        signal.SIG_DFL, signal.SIG_IGN, None)


def test_cycle_budget_clamps_task_cycle_limits():
    task = TinyTask("tiny/0", cycle_budget=100)
    assert task._clamp_cycles(500) == 100
    assert task._clamp_cycles(50) == 50
    assert task._clamp_cycles(None) == 100
    assert TinyTask("tiny/1")._clamp_cycles(500) == 500


def test_cycle_budget_turns_livelock_into_deterministic_timeout():
    """A verif sweep whose cycle budget is far too small times out
    deterministically — and is *not* marked transient (retrying a
    cycle-exact limit would reproduce the same verdict)."""
    task = VerifSweepTask("verif/starved", scenario="cache", ntxns=40,
                          cycle_budget=8)
    res = task.execute(SEED, FleetContext(SEED, None))
    assert res.status == "timeout"
    assert not (res.diagnostics or {}).get("transient")
    again = task.execute(SEED, FleetContext(SEED, None))
    assert result_to_dict(res) == {
        **result_to_dict(again),
        "elapsed": res.elapsed, "worker": res.worker}


# -- env hygiene (satellite 3) ------------------------------------------------


def test_run_inline_restores_simjit_cache_env(tmp_path):
    cache = str(tmp_path / "cache")
    prev = os.environ.pop("SIMJIT_CACHE_DIR", None)
    try:
        run_campaign(_tiny_campaign(n=2), nworkers=1,
                     simjit_cache_dir=cache)
        assert "SIMJIT_CACHE_DIR" not in os.environ

        os.environ["SIMJIT_CACHE_DIR"] = "/original/value"
        run_campaign(_tiny_campaign(n=2), nworkers=1,
                     simjit_cache_dir=cache)
        assert os.environ["SIMJIT_CACHE_DIR"] == "/original/value"
    finally:
        os.environ.pop("SIMJIT_CACHE_DIR", None)
        if prev is not None:
            os.environ["SIMJIT_CACHE_DIR"] = prev


def test_run_inline_restores_env_even_when_interrupted(tmp_path):
    camp = Campaign("interruptible-env", SEED,
                    [InterruptingTask("boom")])
    prev = os.environ.pop("SIMJIT_CACHE_DIR", None)
    os.environ[InterruptingTask.ARM] = "1"
    try:
        res = run_campaign(camp, nworkers=1,
                           simjit_cache_dir=str(tmp_path / "c"))
        assert res.interrupted
        assert "SIMJIT_CACHE_DIR" not in os.environ
    finally:
        os.environ.pop(InterruptingTask.ARM, None)
        os.environ.pop("SIMJIT_CACHE_DIR", None)
        if prev is not None:
            os.environ["SIMJIT_CACHE_DIR"] = prev


# -- aggregation of mixed statuses (satellite 4) ------------------------------


def _mixed_results(camp):
    def mk(tid, status, diagnostics=None, elapsed=0.0, worker=None):
        return TaskResult(
            task_id=tid, kind="tiny", status=status, seed=17,
            payload={"p": tid}, coverage={"g": {"b": 1}},
            telemetry={"counters": {"c": 2}, "histograms": {}},
            diagnostics=diagnostics, elapsed=elapsed, worker=worker)

    return [
        mk("tiny/0", "ok"),
        mk("tiny/1", "poisoned",
           {"attempts": 3,
            "failures": [{"attempt": a, "reason": "crash",
                          "exit": "SIGKILL"} for a in (1, 2, 3)],
            "last_heartbeat": {"attempt": 3, "event": "start"}}),
        mk("tiny/2", "timeout",
           {"message": "watchdog", "transient": True}),
        mk("tiny/3", "mismatch", {"channel": "resp"}),
        mk("tiny/4", "error", {"type": "RuntimeError",
                               "message": "boom"}),
    ]


def test_aggregate_mixed_statuses_deterministic_under_shuffle():
    import random

    camp = _tiny_campaign(n=5)
    results = _mixed_results(camp)
    report = aggregate(camp, results)
    assert report["counts"] == {"ok": 1, "mismatch": 1, "timeout": 1,
                                "error": 1, "poisoned": 1}
    assert report["status"] == "failed"
    assert report["failures"] == ["tiny/1", "tiny/2", "tiny/3",
                                  "tiny/4"]
    assert report["tasks"]["tiny/1"]["status"] == "poisoned"
    baseline = report_json(report)

    rng = random.Random(5)
    shuffled = list(results)
    for _ in range(5):
        rng.shuffle(shuffled)
        assert report_json(aggregate(camp, shuffled)) == baseline

    # Attempt-count variance in the *side-channel* fields (elapsed,
    # worker) must not reach the bytes.
    noisy = [TaskResult(**{**result_to_dict(r),
                           "elapsed": r.elapsed + i * 1.7,
                           "worker": 1000 + i})
             for i, r in enumerate(results)]
    assert report_json(aggregate(camp, noisy)) == baseline


def test_aggregate_partial_reports_missing_tasks():
    camp = _tiny_campaign(n=5)
    results = _mixed_results(camp)[:3]
    with pytest.raises(ValueError):
        aggregate(camp, results)
    report = aggregate(camp, results, partial=True)
    assert report["status"] == "interrupted"
    assert report["missing"] == ["tiny/3", "tiny/4"]
    # A complete set aggregates identically with partial on or off.
    full = _mixed_results(camp)
    assert report_json(aggregate(camp, full, partial=True)) \
        == report_json(aggregate(camp, full))


def test_mixed_status_results_round_trip_through_journal(tmp_path):
    camp = _tiny_campaign(n=5)
    results = _mixed_results(camp)
    path = str(tmp_path / "mixed.jsonl")
    with Journal.create(path, camp) as j:
        for r in results:
            j.append(r)
    _, loaded = Journal.load(path)
    assert report_json(aggregate(camp, list(loaded.values()))) \
        == report_json(aggregate(camp, results))
    for r in results:
        assert result_to_dict(loaded[r.task_id]) == result_to_dict(r)


# -- chaos plan plumbing ------------------------------------------------------


def test_chaos_plan_json_round_trip_and_resolution():
    camp = _tiny_campaign()
    plan = _chaos([
        ChaosEvent(task=None, index=2, mode="kill"),
        ChaosEvent(task="tiny/5", mode="hang", attempts=2,
                   seconds=9.0),
        ChaosEvent(task="tiny/0", mode="spike", mbytes=16),
    ])
    resolved = plan.resolve(camp)
    assert resolved.events[0].task == "tiny/2"
    text = resolved.to_json()
    again = ChaosPlan.from_json(text)
    assert again.to_json() == text
    assert again.lookup("tiny/5", 1).mode == "hang"
    assert again.lookup("tiny/5", 2).mode == "hang"
    assert again.lookup("tiny/5", 3) is None      # attempts exhausted
    assert again.lookup("tiny/1", 1) is None
    with pytest.raises(ValueError):
        plan.install()                             # unresolved index
    with pytest.raises(ValueError):
        ChaosEvent(task="t", mode="explode")
    with pytest.raises(ValueError):
        _chaos([ChaosEvent(task=None, index=99)]).resolve(camp)


def test_bench_task_cycle_budget_passes_clamped_limit():
    """BenchPointTask forwards a clamped max_cycles only when a budget
    is armed, so unbudgeted bench payloads keep their exact bytes."""
    calls = {}

    def probe(rng, params):
        calls.update(params)
        return {"ncycles": 1}, None

    task = BenchPointTask("bench/p", design=probe,
                          params={"x": 1}, cycle_budget=123)
    res = task.execute(SEED, FleetContext(SEED, None))
    assert res.status == "ok"
    assert calls["max_cycles"] == 123
    assert res.payload["params"] == {"x": 1}      # budget not leaked

    calls.clear()
    BenchPointTask("bench/q", design=probe, params={"x": 1}) \
        .execute(SEED, FleetContext(SEED, None))
    assert "max_cycles" not in calls
