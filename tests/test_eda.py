"""Tests for the analytic EDA estimator."""

import pytest

from repro.components import IntPipelinedMultiplier, Register
from repro.eda import estimate
from repro.mem import CacheRTL, MemMsg
from repro.accel import DotProductRTL, XcelMsg
from repro.proc import ProcRTL


def test_register_area_is_mostly_flops():
    report = estimate(Register(8).elaborate())
    # 8 flop bits plus a small input-mux charge.
    assert 8 * 6.0 <= report.area_ge <= 8 * 6.0 + 8 * 4.0


def test_wider_register_costs_more():
    assert estimate(Register(32).elaborate()).area_ge \
        > estimate(Register(8).elaborate()).area_ge


def test_multiplier_dominates_register():
    mul = estimate(IntPipelinedMultiplier(32, 4).elaborate())
    reg = estimate(Register(32).elaborate())
    assert mul.area_ge > 10 * reg.area_ge


def test_multiplier_depth_grows_with_width():
    narrow = estimate(IntPipelinedMultiplier(8, 1).elaborate())
    wide = estimate(IntPipelinedMultiplier(64, 1).elaborate())
    assert wide.critical_path_levels > narrow.critical_path_levels


def test_cache_data_array_uses_sram_model():
    report = estimate(CacheRTL(MemMsg(), MemMsg(), 64).elaborate())
    assert any(m.sram_bits > 0 for m in report.modules)


def test_bigger_cache_has_more_area():
    small = estimate(CacheRTL(MemMsg(), MemMsg(), 16).elaborate())
    big = estimate(CacheRTL(MemMsg(), MemMsg(), 256).elaborate())
    assert big.area_ge > small.area_ge


def test_report_properties_consistent():
    report = estimate(ProcRTL().elaborate())
    assert report.area_um2 == pytest.approx(report.area_ge * 0.8)
    assert report.cycle_time_ps > 0
    assert report.max_frequency_mhz > 0
    assert report.energy_per_cycle_pj > 0
    assert "area" in report.summary()


def test_by_module_class():
    report = estimate(DotProductRTL(MemMsg(), XcelMsg()).elaborate())
    classes = report.by_module_class()
    assert "DotProductDpath" in classes
    assert "IntPipelinedMultiplier" in classes


def test_accelerator_is_small_fraction_of_tile():
    """Paper Figure 5b: the accelerator adds ~4% tile area."""
    proc = estimate(ProcRTL().elaborate()).area_ge
    cache = estimate(CacheRTL(MemMsg(), MemMsg(), 64).elaborate()).area_ge
    accel = estimate(DotProductRTL(MemMsg(), XcelMsg()).elaborate()).area_ge
    share = accel / (proc + 2 * cache + accel)
    assert 0.01 < share < 0.15
