"""Gap-filling tests for core APIs and corner cases."""

import pytest

from repro import (
    Bits,
    InPort,
    Model,
    OutPort,
    SimulationTool,
    Wire,
)


def test_posedge_clk_alias():
    class M(Model):
        def __init__(s):
            s.out = OutPort(4)

            @s.posedge_clk
            def logic():
                s.out.next = s.out + 1

    model = M().elaborate()
    assert model.get_tick_blocks()[0].level == "rtl"
    sim = SimulationTool(model)
    sim.run(3)          # no reset: the block ignores s.reset anyway
    assert model.out == 3


def test_connect_dict():
    class M(Model):
        def __init__(s):
            s.a = InPort(8)
            s.b = OutPort(8)
            s.mid = Wire(8)
            s.connect_dict({s.a: s.mid, s.mid: s.b})

    model = M().elaborate()
    assert model.a._net is model.b._net


def test_simulationtool_auto_elaborates():
    class M(Model):
        def __init__(s):
            s.out = OutPort(1)
            s.connect(s.out, 1)

    model = M()
    assert not model.is_elaborated()
    SimulationTool(model)
    assert model.is_elaborated()
    assert model.out == 1


def test_model_repr_and_full_name():
    class Inner(Model):
        def __init__(s):
            s.p = OutPort(1)

    class Outer(Model):
        def __init__(s):
            s.inner = Inner()

    model = Outer().elaborate()
    assert "Outer" in repr(model)
    assert model.inner.full_name() == "top.inner"


def test_nested_bundle_lists_named():
    from repro import InValRdyBundle

    class M(Model):
        def __init__(s):
            s.chans = InValRdyBundle[2](8)

    model = M().elaborate()
    names = {sig.name for sig in model._all_signals}
    assert "chans[0].msg" in names
    assert "chans[1].rdy" in names


def test_run_counts_cycles():
    class M(Model):
        def __init__(s):
            s.out = OutPort(8)

            @s.tick_rtl
            def logic():
                s.out.next = s.out + 1

    sim = SimulationTool(M().elaborate())
    sim.run(7)
    assert sim.ncycles == 7


def test_signal_rsub_with_int():
    w = Wire(8)
    w.value = 3
    assert (10 - w) == 7


def test_bits_rsub_wraps():
    assert (0 - Bits(8, 1)).uint() == 0xFF


def test_stats_collection_counts_blocks():
    class M(Model):
        def __init__(s):
            s.a = InPort(8)
            s.out = OutPort(8)

            @s.combinational
            def logic():
                s.out.value = s.a + 1

    sim = SimulationTool(M().elaborate(), collect_stats=True)
    sim.eval_combinational()
    baseline = sim.num_events
    sim.model.a.value = 5
    sim.eval_combinational()
    assert sim.num_events > baseline
    assert sum(sim.block_calls.values()) == sim.num_events


def test_double_simulation_of_same_model_fails_gracefully():
    """Building two simulators over one model is allowed; the second
    takes over the nets."""
    class M(Model):
        def __init__(s):
            s.out = OutPort(8)

            @s.tick_rtl
            def logic():
                s.out.next = s.out + 1

    model = M().elaborate()
    SimulationTool(model)
    sim2 = SimulationTool(model)
    sim2.run(2)
    assert model.out == 2


def test_elaboration_error_on_connect_after_elaborate():
    """Connections made after elaboration are silently inert — verify
    the elaborated flag guards re-elaboration."""
    class M(Model):
        def __init__(s):
            s.a = Wire(8)
            s.b = Wire(8)

    model = M().elaborate()
    model.connect(model.a, model.b)
    model.elaborate()               # no-op: already elaborated
    assert model.a._net is not model.b._net


def test_wide_signal_over_64_bits():
    """65+-bit signals work through sim (the memory request path)."""
    class M(Model):
        def __init__(s):
            s.in_ = InPort(80)
            s.out = OutPort(80)

            @s.tick_rtl
            def logic():
                s.out.next = s.in_.value

    model = M().elaborate()
    sim = SimulationTool(model)
    sim.reset()
    value = (1 << 79) | 0xDEADBEEF
    model.in_.value = value
    sim.cycle()
    assert int(model.out) == value
