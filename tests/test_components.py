"""Unit tests for the component library."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Model, SimulationTool
from repro.components import (
    Adder,
    BypassQueue,
    Counter,
    Demux,
    EqComparator,
    Incrementer,
    IntPipelinedMultiplier,
    LtComparator,
    Mux,
    NormalQueue,
    QueueCL,
    RegEn,
    RegEnRst,
    RegRst,
    Register,
    RoundRobinArbiter,
    Subtractor,
    ZeroExtender,
    run_src_sink_test,
)


def _sim(model):
    model.elaborate()
    sim = SimulationTool(model)
    sim.reset()
    return sim


# -- registers -------------------------------------------------------------


def test_register_delays_one_cycle():
    m = Register(8)
    sim = _sim(m)
    m.in_.value = 5
    sim.cycle()
    assert m.out == 5


def test_regen_holds_without_enable():
    m = RegEn(8)
    sim = _sim(m)
    m.in_.value = 7
    m.en.value = 1
    sim.cycle()
    m.in_.value = 9
    m.en.value = 0
    sim.cycle()
    assert m.out == 7
    m.en.value = 1
    sim.cycle()
    assert m.out == 9


def test_regrst_resets():
    m = RegRst(8, reset_value=0xAA)
    m.elaborate()
    sim = SimulationTool(m)
    sim.reset()
    assert m.out == 0xAA
    m.in_.value = 1
    sim.cycle()
    assert m.out == 1


def test_regenrst():
    m = RegEnRst(8, reset_value=3)
    sim = _sim(m)
    assert m.out == 3
    m.in_.value = 10
    m.en.value = 0
    sim.cycle()
    assert m.out == 3
    m.en.value = 1
    sim.cycle()
    assert m.out == 10


def test_counter_enable_clear():
    m = Counter(4)
    sim = _sim(m)
    m.en.value = 1
    sim.run(3)
    assert m.count == 3
    m.clear.value = 1
    sim.cycle()
    assert m.count == 0


# -- muxes ------------------------------------------------------------------


@pytest.mark.parametrize("nports", [2, 3, 4, 8])
def test_mux(nports):
    m = Mux(8, nports)
    m.elaborate()
    sim = SimulationTool(m)
    for i in range(nports):
        m.in_[i].value = 0x40 + i
    for sel in range(nports):
        m.sel.value = sel
        sim.eval_combinational()
        assert m.out == 0x40 + sel


def test_demux():
    m = Demux(8, 4)
    m.elaborate()
    sim = SimulationTool(m)
    m.in_.value = 0x55
    m.sel.value = 2
    sim.eval_combinational()
    assert m.out[2] == 0x55
    assert m.out[0] == 0 and m.out[1] == 0 and m.out[3] == 0


# -- arithmetic --------------------------------------------------------------


def test_adder_with_carry():
    m = Adder(8)
    m.elaborate()
    sim = SimulationTool(m)
    m.in0.value = 0xFF
    m.in1.value = 0x01
    sim.eval_combinational()
    assert m.out == 0
    assert m.cout == 1
    m.cin.value = 1
    sim.eval_combinational()
    assert m.out == 1


def test_subtractor_wraps():
    m = Subtractor(8)
    m.elaborate()
    sim = SimulationTool(m)
    m.in0.value = 0
    m.in1.value = 1
    sim.eval_combinational()
    assert m.out == 0xFF


def test_incrementer():
    m = Incrementer(8, amount=4)
    m.elaborate()
    sim = SimulationTool(m)
    m.in_.value = 10
    sim.eval_combinational()
    assert m.out == 14


def test_comparators():
    eq = EqComparator(8)
    eq.elaborate()
    sim = SimulationTool(eq)
    eq.in0.value = 3
    eq.in1.value = 3
    sim.eval_combinational()
    assert eq.out == 1

    lt = LtComparator(8)
    lt.elaborate()
    sim = SimulationTool(lt)
    lt.in0.value = 3
    lt.in1.value = 200
    sim.eval_combinational()
    assert lt.out == 1


def test_zero_extender():
    m = ZeroExtender(4, 12)
    m.elaborate()
    sim = SimulationTool(m)
    m.in_.value = 0xF
    sim.eval_combinational()
    assert m.out == 0x00F


@pytest.mark.parametrize("nstages", [1, 2, 4])
def test_pipelined_multiplier_latency(nstages):
    m = IntPipelinedMultiplier(32, nstages=nstages)
    sim = _sim(m)
    m.op_a.value = 6
    m.op_b.value = 7
    for _ in range(nstages):
        sim.cycle()
    assert m.product == 42


def test_pipelined_multiplier_throughput():
    """One result per cycle once the pipe is full."""
    m = IntPipelinedMultiplier(32, nstages=3)
    sim = _sim(m)
    inputs = [(i, i + 1) for i in range(1, 8)]
    results = []
    for i, (a, b) in enumerate(inputs):
        m.op_a.value = a
        m.op_b.value = b
        sim.cycle()
        if i >= 2:
            results.append(int(m.product))
    for (a, b), got in zip(inputs, results):
        assert got == a * b


def test_multiplier_bad_nstages():
    with pytest.raises(ValueError):
        IntPipelinedMultiplier(32, nstages=0)


# -- queues ---------------------------------------------------------------------


@pytest.mark.parametrize("qtype,nentries", [
    (NormalQueue, 1), (NormalQueue, 2), (NormalQueue, 4),
    (QueueCL, 2), (QueueCL, 4),
])
def test_queue_passes_messages_in_order(qtype, nentries):
    msgs = [i * 3 + 1 for i in range(20)]
    run_src_sink_test(qtype(nentries, 16), 16, msgs, msgs)


@pytest.mark.parametrize("src_iv,sink_iv", [(0, 3), (3, 0), (2, 2)])
def test_queue_tolerates_backpressure(src_iv, sink_iv):
    msgs = list(range(1, 15))
    run_src_sink_test(NormalQueue(2, 16), 16, msgs, msgs,
                      src_interval=src_iv, sink_interval=sink_iv)


def test_bypass_queue_same_cycle():
    msgs = list(range(1, 10))
    cycles_bypass = run_src_sink_test(BypassQueue(16), 16, msgs, msgs)
    cycles_normal = run_src_sink_test(NormalQueue(1, 16), 16, msgs, msgs)
    assert cycles_bypass < cycles_normal


def test_queue_bad_nentries():
    with pytest.raises(ValueError):
        NormalQueue(0, 8)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=0xFFFF),
                min_size=1, max_size=30),
       st.integers(min_value=1, max_value=4),
       st.integers(min_value=0, max_value=2),
       st.integers(min_value=0, max_value=2))
def test_prop_queue_delivers_everything(msgs, nentries, src_iv, sink_iv):
    """Property: any message list survives any queue depth and any
    src/sink interval combination, in order."""
    run_src_sink_test(NormalQueue(nentries, 16), 16, msgs, msgs,
                      src_interval=src_iv, sink_interval=sink_iv)


# -- arbiter ------------------------------------------------------------------------


def test_arbiter_single_requester():
    m = RoundRobinArbiter(4)
    sim = _sim(m)
    m.reqs.value = 0b0100
    sim.eval_combinational()
    assert m.grants == 0b0100


def test_arbiter_no_requests():
    m = RoundRobinArbiter(4)
    sim = _sim(m)
    m.reqs.value = 0
    sim.eval_combinational()
    assert m.grants == 0


def test_arbiter_is_fair():
    """Under full contention, each requester wins equally often."""
    m = RoundRobinArbiter(4)
    sim = _sim(m)
    wins = [0] * 4
    m.reqs.value = 0b1111
    for _ in range(40):
        sim.cycle()
        g = int(m.grants)
        for i in range(4):
            if (g >> i) & 1:
                wins[i] += 1
    assert wins == [10, 10, 10, 10]


def test_arbiter_grants_are_onehot():
    m = RoundRobinArbiter(8)
    sim = _sim(m)
    for reqs in (0b10101010, 0b11111111, 0b00010000):
        m.reqs.value = reqs
        sim.cycle()
        g = int(m.grants)
        assert g != 0 and (g & (g - 1)) == 0
        assert g & reqs == g
