"""Unit tests for the differential-verification subsystem itself.

The checkers get checked: strategies must honor their constraints,
monitors must catch deliberately seeded protocol violations, the
shrinker must converge to a known minimal core, and the cosim harness
must surface mismatches / protocol errors with useful metadata.  The
package doctests run here too.
"""

import doctest

import pytest

import repro.verif
from repro.core import Model, OutValRdyBundle, Wire
from repro.mem.msgs import MEM_REQ_READ, MEM_REQ_WRITE, MemReqMsg
from repro.net import NetMsg
from repro.verif import (
    RNG,
    BitsStrategy,
    BitStructStrategy,
    ChoiceStrategy,
    CoSimHarness,
    CoSimMismatch,
    CoSimProtocolError,
    Coverage,
    DutAdapter,
    IntRangeStrategy,
    Scoreboard,
    ValRdyMonitor,
    backpressure_pattern,
    classify_mem_request,
    emit_repro,
    mem_request_strategy,
    net_message_strategy,
    shrink_cosim_failure,
    shrink_stimulus,
)
from repro.verif.strategies import _corner_values


# -- strategies ---------------------------------------------------------------


def test_rng_fork_is_deterministic_and_independent():
    a1 = [RNG(9).fork("reqs").random() for _ in range(4)]
    a2 = [RNG(9).fork("reqs").random() for _ in range(4)]
    b = [RNG(9).fork("resps").random() for _ in range(4)]
    assert a1 == a2          # same seed + label -> same stream
    assert a1 != b           # different label -> different stream
    assert a1 != [RNG(10).fork("reqs").random() for _ in range(4)]


def test_bits_strategy_range_and_corners():
    rng = RNG(1)
    strat = BitsStrategy(12)
    samples = [strat.sample(rng) for _ in range(500)]
    assert all(0 <= v < (1 << 12) for v in samples)
    # With corner_bias=1.0 every sample is a corner value.
    always = BitsStrategy(12, corner_bias=1.0)
    corners = set(_corner_values(12))
    assert all(always.sample(rng) in corners for _ in range(100))
    assert {0, 1, (1 << 12) - 1, 1 << 11} <= corners


def test_int_range_strategy():
    rng = RNG(2)
    strat = IntRangeStrategy(5, 9)
    assert all(5 <= strat.sample(rng) <= 9 for _ in range(200))
    with pytest.raises(ValueError):
        IntRangeStrategy(3, 2)


def test_choice_strategy_weights():
    rng = RNG(3)
    strat = ChoiceStrategy([("a", 1.0), ("b", 0.0)])
    assert all(strat.sample(rng) == "a" for _ in range(50))
    flat = ChoiceStrategy(["x", "y"])
    assert {flat.sample(rng) for _ in range(100)} == {"x", "y"}


def test_bitstruct_strategy_fields_and_overrides():
    msg_type = NetMsg(4, 64, 8)
    rng = RNG(4)
    strat = BitStructStrategy(
        msg_type, overrides={"dest": ChoiceStrategy([2])})
    for _ in range(50):
        msg = strat.unpack(strat.sample(rng))
        assert int(msg.dest) == 2
        assert 0 <= int(msg.payload) < (1 << 8)
    with pytest.raises(ValueError, match="unknown field"):
        BitStructStrategy(msg_type, overrides={"nope": ChoiceStrategy([0])})
    with pytest.raises(TypeError):
        BitStructStrategy(int)


def test_mem_request_strategy_constraints():
    rng = RNG(5)
    strat = mem_request_strategy(addr_words=16, addr_base=0x100)
    for _ in range(200):
        msg = strat.unpack(strat.sample(rng))
        addr = int(msg.addr)
        assert addr % 4 == 0
        assert 0x100 <= addr < 0x100 + 16 * 4
        assert int(msg.type_) in (MEM_REQ_READ, MEM_REQ_WRITE)


def test_net_message_strategy_src_pinned():
    msg_type = NetMsg(4, 64, 8)
    rng = RNG(6)
    strat = net_message_strategy(msg_type, src=3, nterminals=4)
    dests = set()
    for _ in range(100):
        msg = strat.unpack(strat.sample(rng))
        assert int(msg.src) == 3
        dests.add(int(msg.dest))
    assert dests == {0, 1, 2, 3}


def test_backpressure_patterns():
    assert all(backpressure_pattern("always")(c) for c in range(20))
    bursty = backpressure_pattern("bursty", burst=3)
    assert [bursty(c) for c in range(8)] == [
        True, True, True, False, False, False, True, True]
    late = backpressure_pattern("never_first", burst=4)
    assert [late(c) for c in range(6)] == [
        False, False, False, False, True, True]
    # The random pattern is a pure function of (seed, cycle).
    r1 = backpressure_pattern("random", p=0.5, seed=7)
    r2 = backpressure_pattern("random", p=0.5, seed=7)
    assert [r1(c) for c in range(64)] == [r2(c) for c in range(64)]
    assert 0 < sum(r1(c) for c in range(64)) < 64
    with pytest.raises(ValueError):
        backpressure_pattern("sometimes")


# -- monitors -----------------------------------------------------------------


def test_monitor_records_transfers():
    mon = ValRdyMonitor("ch")
    mon.observe(0, 1, 1, 0xA)
    mon.observe(1, 0, 1, 0)
    mon.observe(2, 1, 1, 0xB)
    assert mon.transfers == [(0, 0xA), (2, 0xB)]
    assert mon.ok


def test_monitor_catches_val_drop():
    mon = ValRdyMonitor("ch")
    mon.observe(0, 1, 0, 0xA)       # stalled offer
    mon.observe(1, 0, 0, 0)         # revoked: violation
    assert [v.rule for v in mon.violations] == ["val_drop"]
    assert "0xa" in str(mon.violations[0])
    assert mon.violations[0].cycle == 1


def test_monitor_catches_payload_change():
    mon = ValRdyMonitor("ch")
    mon.observe(0, 1, 0, 0xA)       # stalled offer
    mon.observe(1, 1, 0, 0xB)       # payload swapped: violation
    mon.observe(2, 1, 1, 0xB)       # eventually accepted
    assert [v.rule for v in mon.violations] == ["payload_change"]
    assert mon.transfers == [(2, 0xB)]


def test_monitor_stable_stall_is_clean():
    mon = ValRdyMonitor("ch")
    for cycle in range(5):
        mon.observe(cycle, 1, 0, 0xC)
    mon.observe(5, 1, 1, 0xC)
    assert mon.ok
    assert mon.transfers == [(5, 0xC)]


def test_monitor_check_false_records_but_never_flags():
    mon = ValRdyMonitor("tap", check=False)
    mon.observe(0, 1, 0, 0xA)
    mon.observe(1, 0, 0, 0)         # would be val_drop if checking
    mon.observe(2, 1, 1, 0xD)
    assert mon.ok
    assert mon.transfers == [(2, 0xD)]


def test_scoreboard():
    sb = Scoreboard(expected=[1, 2, 3])
    assert sb.push_actual(1) and sb.push_actual(2)
    assert not sb.ok                # 3 still pending
    assert sb.pending == [3]
    assert sb.push_actual(3) and sb.ok
    assert not sb.push_actual(4)    # extra actual
    assert sb.mismatches == [(3, None, 4)]
    keyed = Scoreboard(expected=[0x1F], key=lambda m: m & 0xF)
    assert keyed.push_actual(0x2F)  # high nibble ignored
    assert keyed.ok


# -- coverage -----------------------------------------------------------------


def test_coverage_bins_and_require():
    cov = Coverage()
    cov.hit("g", "a")
    cov.hit("g", "a")
    cov.hit("g", "b", n=3)
    assert cov.count("g", "a") == 2
    assert cov.bins("g") == {"a": 2, "b": 3}
    cov.require("g", ["a", "b"])
    with pytest.raises(AssertionError, match="missing bins"):
        cov.require("g", ["c"])
    other = Coverage()
    other.hit("g", "a")
    cov.merge(other)
    assert cov.count("g", "a") == 3
    assert "g" in cov.report()


def test_classify_mem_request_bins():
    cov = Coverage()
    classify_mem_request(cov, int(MemReqMsg.mk_wr(0x10, 0)))
    classify_mem_request(cov, int(MemReqMsg.mk_rd(0x10)))
    classify_mem_request(cov, int(MemReqMsg.mk_wr(0x10, 1 << 5)))
    bins = cov.bins("mem_req")
    assert bins["write"] == 2 and bins["read"] == 1
    assert bins["data_zero"] == 2       # rd data and first wr data
    assert bins["data_onehot"] == 1


# -- shrinking ----------------------------------------------------------------


def test_shrink_to_known_core():
    stim = {"a": list(range(20)), "b": list(range(100, 120))}

    def still_fails(candidate):
        return 7 in candidate["a"] and 111 in candidate["b"]

    shrunk = shrink_stimulus(stim, still_fails)
    assert shrunk == {"a": [7], "b": [111]}


def test_shrink_preserves_order():
    stim = {"a": [5, 9, 1, 9, 2]}
    # Fails iff both nines survive, in order.
    shrunk = shrink_stimulus(
        stim, lambda s: s["a"].count(9) >= 2)
    assert shrunk == {"a": [9, 9]}


def test_shrink_empty_stimulus_is_noop():
    calls = []

    def still_fails(candidate):
        calls.append(candidate)
        return True

    assert shrink_stimulus({}, still_fails) == {}
    assert shrink_stimulus({"a": []}, still_fails) == {"a": []}


def test_shrink_single_transaction():
    # Irreducible: the lone transaction is the failure.
    shrunk = shrink_stimulus({"a": [42]}, lambda s: 42 in s["a"])
    assert shrunk == {"a": [42]}
    # Reducible: the transaction is irrelevant and gets dropped.
    shrunk = shrink_stimulus({"a": [42]}, lambda s: True)
    assert shrunk == {"a": []}


def test_shrink_memoizes_repeated_candidates():
    seen = []

    def still_fails(candidate):
        seen.append(tuple(
            (ch, p) for ch in sorted(candidate)
            for p in candidate[ch]))
        return 7 in candidate["a"] and 3 in candidate["a"]

    shrunk = shrink_stimulus({"a": list(range(10))}, still_fails)
    assert shrunk == {"a": [3, 7]}
    # Every actual re-execution was for a distinct candidate: repeats
    # served from the memo never reach still_fails.
    assert len(seen) == len(set(seen))


def test_shrink_cosim_failure_rejects_passing_scenario():
    class _NeverFails:
        def run(self, stimulus, **kwargs):
            return None

    with pytest.raises(ValueError, match="does not fail"):
        shrink_cosim_failure(lambda: _NeverFails(), {"a": [1]})


def test_emit_repro_is_valid_python(tmp_path):
    path = tmp_path / "repro.py"
    emit_repro(
        path,
        "def make_cosim():\n"
        "    raise AssertionError('reproduced')",
        {"a": [1, 2]}, {"max_cycles": 99}, note="unit test")
    text = path.read_text()
    assert "STIMULUS = {'a': [1, 2]}" in text
    namespace = {}
    exec(compile(text, str(path), "exec"), namespace)
    with pytest.raises(AssertionError, match="reproduced"):
        namespace["test_repro"]()


# -- cosim harness ------------------------------------------------------------


class _Pipe(Model):
    """Single-entry val/rdy pipe; ``delta`` models a data-path bug."""

    def __init__(s, delta=0):
        from repro.core import InValRdyBundle
        s.delta = delta
        s.enq = InValRdyBundle(8)
        s.deq = OutValRdyBundle(8)
        s.full = Wire(1)
        s.data = Wire(8)

        @s.combinational
        def comb():
            s.enq.rdy.value = 0 if s.full.uint() else 1
            s.deq.val.value = s.full.uint()
            s.deq.msg.value = s.data.uint()

        @s.tick_rtl
        def tick():
            if s.reset:
                s.full.next = 0
            elif s.enq.val.uint() and s.enq.rdy.uint():
                s.full.next = 1
                s.data.next = (s.enq.msg.uint() + s.delta) & 0xFF
            elif s.deq.val.uint() and s.deq.rdy.uint():
                s.full.next = 0


def _pipe_dut(name, delta=0, sched="auto"):
    pipe = _Pipe(delta).elaborate()
    return DutAdapter(name, pipe, drives={"enq": pipe.enq},
                      captures={"deq": pipe.deq}, sched=sched)


def test_cosim_validation_errors():
    with pytest.raises(ValueError, match="at least two"):
        CoSimHarness([_pipe_dut("only")])
    with pytest.raises(ValueError, match="compare"):
        CoSimHarness([_pipe_dut("a"), _pipe_dut("b")],
                     compare="approximately")
    other = _Pipe().elaborate()
    renamed = DutAdapter("c", other, drives={"in": other.enq},
                         captures={"out": other.deq})
    with pytest.raises(ValueError, match="channel sets differ"):
        CoSimHarness([_pipe_dut("a"), renamed])


def test_cosim_detects_data_mismatch_with_metadata():
    harness = CoSimHarness(
        [_pipe_dut("good"), _pipe_dut("buggy", delta=1)],
        compare="cycle_tolerant")
    with pytest.raises(CoSimMismatch) as excinfo:
        harness.run({"enq": [0x10, 0x20]}, max_cycles=100)
    exc = excinfo.value
    assert exc.ref == "good" and exc.dut == "buggy"
    assert exc.channel == "deq" and exc.index == 0
    assert exc.expected[1] == 0x10 and exc.actual[1] == 0x11


def test_cosim_clean_run_reports_transfers_and_cycles():
    harness = CoSimHarness(
        [_pipe_dut("event", sched="event"),
         _pipe_dut("static", sched="static")],
        compare="cycle_exact")
    res = harness.run({"enq": [7, 8, 9]}, max_cycles=200,
                      backpressure=backpressure_pattern("bursty", burst=2))
    assert res.ntransactions("deq") == 3
    assert res.transfers["event"]["deq"] == res.transfers["static"]["deq"]
    assert len(set(res.ncycles.values())) == 1
    assert res.coverage.count("handshake", "drive_xfer") >= 3


class _ValDropper(Model):
    """Broken producer: offers a new message every other cycle and
    revokes it if the sink stalls — the classic val-drop bug."""

    def __init__(s):
        s.out = OutValRdyBundle(8)
        s.cnt = Wire(8)

        @s.combinational
        def drive():
            active = s.cnt.uint() < 8 and s.cnt.uint() % 2 == 0
            s.out.val.value = 1 if active else 0
            s.out.msg.value = 0x40 | s.cnt.uint()

        @s.tick_rtl
        def tick():
            if s.reset:
                s.cnt.next = 0
            else:
                s.cnt.next = s.cnt.uint() + 1


def test_cosim_flags_seeded_protocol_violation():
    """A DUT that drops stalled offers is reported even though both
    implementations agree with each other."""
    def dropper(name):
        m = _ValDropper().elaborate()
        return DutAdapter(name, m, captures={"out": m.out})

    harness = CoSimHarness([dropper("a"), dropper("b")],
                           compare="cycle_exact")
    with pytest.raises(CoSimProtocolError) as excinfo:
        harness.run({}, max_cycles=100, drain=4,
                    backpressure=backpressure_pattern("never_first",
                                                      burst=16))
    rules = {v.rule for v in excinfo.value.violations}
    assert "val_drop" in rules


# -- package doctests ---------------------------------------------------------


def test_verif_doctests():
    result = doctest.testmod(repro.verif, verbose=False)
    assert result.attempted > 0
    assert result.failed == 0
