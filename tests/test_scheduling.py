"""Static-schedule correctness: mode equivalence, loop detection,
hybrid fallback, and auto selection.

The static scheduler is only allowed to change *speed*, never
*behavior*: every test here runs the same design under
``sched="static"`` and ``sched="event"`` and demands bit-identical
port values and line traces, cycle by cycle.
"""

import random

import pytest

from repro import (
    InPort,
    Model,
    OutPort,
    SimulationError,
    SimulationTool,
    Wire,
)
from repro.accel import mvmult_data, mvmult_xcel
from repro.accel.kernels import Y_BASE
from repro.accel.tile import Tile, run_tile
from repro.mem import BankedCacheRTL, MemReqMsg
from repro.net import MeshNetworkStructural, RouterRTL
from repro.proc import assemble
from repro.tools import activity_report

MODES = ("auto", "static", "event")


# -- helpers ------------------------------------------------------------------------


def _lockstep(models, sims, ncycles, stimulus=None, probes=()):
    """Advance several sims of identical designs in lockstep, applying
    the same stimulus to each and asserting identical traces/probes."""
    for cyc in range(ncycles):
        if stimulus is not None:
            for model in models:
                stimulus(model, cyc)
        for sim in sims:
            sim.cycle()
        traces = [model.line_trace() for model in models]
        assert len(set(traces)) == 1, (
            f"cycle {cyc}: line traces diverged: {traces}"
        )
        for probe in probes:
            values = [probe(model) for model in models]
            assert len(set(values)) == 1, (
                f"cycle {cyc}: probe values diverged: {values}"
            )


def _pair(build):
    """Two elaborated instances of a design + static/event sims."""
    models = [build().elaborate() for _ in range(2)]
    sims = [SimulationTool(m, sched=s)
            for m, s in zip(models, ("static", "event"))]
    assert sims[0].sched_mode == "static"
    assert sims[1].sched_mode == "event"
    for sim in sims:
        sim.reset()
    return models, sims


# -- mode equivalence: mesh network -------------------------------------------------


def test_mesh_static_event_identical():
    models, sims = _pair(
        lambda: MeshNetworkStructural(RouterRTL, 4, 256, 32, 2))
    mt = models[0].msg_type
    dest_lo, _ = mt.field_slice("dest")
    src_lo, _ = mt.field_slice("src")

    # Deterministic traffic: every terminal injects to a rotating
    # destination whenever its input is ready.
    def stimulus(net, cyc):
        for i, port in enumerate(net.in_):
            dest = (i + cyc) % 4
            port.msg.value = (dest << dest_lo) | (i << src_lo) | (cyc & 0xFF)
            port.val.value = cyc % 3 != 0
        for port in net.out:
            port.rdy.value = 1

    def outputs(net):
        return tuple(
            (p.val.uint(), p.msg.uint() if p.val.uint() else 0)
            for p in net.out
        )

    _lockstep(models, sims, 60, stimulus, probes=[outputs])


# -- mode equivalence: banked cache -------------------------------------------------


def test_banked_cache_static_event_identical():
    models, sims = _pair(lambda: BankedCacheRTL(nbanks=4, nlines=8))
    traces = [[], []]
    reqs = [
        (k % 4,
         MemReqMsg.mk_wr(k * 4 % 64, k + 1) if k % 3 == 0
         else MemReqMsg.mk_rd(k * 4 % 64))
        for k in range(24)
    ]

    def step():
        for sim in sims:
            sim.cycle()
        lt = [model.line_trace() for model in models]
        assert lt[0] == lt[1], f"line traces diverged: {lt}"

    for bank, req in reqs:
        # Offer the request until the queue accepts it.
        for model in models:
            enq = model.req_q[bank].enq
            enq.msg.value = req
            enq.val.value = 1
            model.resp_q[bank].deq.rdy.value = 1
        for _ in range(100):
            acc = [m.req_q[bank].enq.rdy.uint() for m in models]
            assert acc[0] == acc[1], "accept timing diverged"
            step()
            if acc[0]:
                break
        else:
            raise AssertionError("cache request never accepted")
        for model in models:
            model.req_q[bank].enq.val.value = 0
        # Wait for the response to pop out of the response queue.
        for _ in range(100):
            vals = [m.resp_q[bank].deq.val.uint() for m in models]
            assert vals[0] == vals[1], "response timing diverged"
            if vals[0]:
                for k, model in enumerate(models):
                    traces[k].append((bank,
                                      model.resp_q[bank].deq.msg.uint()))
                step()
                break
            step()
        else:
            raise AssertionError("cache response never arrived")
    assert traces[0] == traces[1]
    assert len(traces[0]) == len(reqs)
    assert sims[0].ncycles == sims[1].ncycles


# -- mode equivalence: accelerator tile ---------------------------------------------


def test_tile_static_event_identical():
    words = assemble(mvmult_xcel(4, 8))
    data, expected = mvmult_data(4, 8)

    results = {}
    for sched in ("static", "event"):
        tile, ncycles = run_tile(("rtl", "rtl", "rtl"), words, data,
                                 sched=sched)
        got = [tile.mem.read_word(Y_BASE + 4 * i)
               for i in range(len(expected))]
        assert got == expected
        results[sched] = ncycles
    assert results["static"] == results["event"]


# -- combinational loop detection ---------------------------------------------------


class _CombLoop(Model):
    def __init__(s):
        s.a = Wire(1)
        s.b = Wire(1)

        @s.combinational
        def one():
            s.a.value = ~s.b.value

        @s.combinational
        def two():
            s.b.value = s.a.value


@pytest.mark.parametrize("sched", MODES)
def test_comb_loop_raises_in_every_mode(sched):
    model = _CombLoop().elaborate()
    with pytest.raises(SimulationError, match="loop"):
        sim = SimulationTool(model, sched=sched)
        sim.eval_combinational()


# -- hybrid fallback: cyclic SCC demoted, acyclic part stays static -----------------


def test_tile_rtl_partial_fallback():
    tile = Tile(("rtl", "rtl", "rtl")).elaborate()
    sim = SimulationTool(tile, sched="static")
    desc = sim.schedule.describe()
    # The processor/xcel val-rdy handshake is a genuine comb cycle:
    # those blocks must be demoted to the event fixpoint, everything
    # else must stay on the static schedule.
    assert desc["demoted_cyclic"] >= 1
    assert desc["static_blocks"] >= 1
    assert sim.sched_mode == "static"
    # Hybrid schedules cannot use the flat mega-cycle kernel.
    assert sim._kernel is None
    # And the hybrid still simulates correctly.
    sim.reset()
    for _ in range(50):
        sim.cycle()


# -- auto mode selection ------------------------------------------------------------


class _Counter(Model):
    def __init__(s):
        s.en = InPort(1)
        s.count = OutPort(8)

        @s.tick_rtl
        def logic():
            if s.reset:
                s.count.next = 0
            elif s.en:
                s.count.next = s.count + 1


class _Opaque(Model):
    """Comb block whose write set defeats static analysis (method
    call target), leaving nothing to schedule statically."""

    def __init__(s):
        s.in_ = InPort(8)
        s.out = OutPort(8)

        @s.combinational
        def logic():
            s.helper()

    def helper(s):
        s.out.value = s.in_.value + 1


def test_auto_picks_static_for_analyzable_design():
    sim = SimulationTool(_Counter().elaborate(), sched="auto")
    assert sim.sched_mode == "static"


def test_auto_falls_back_to_event_for_opaque_design():
    model = _Opaque().elaborate()
    sim = SimulationTool(model, sched="auto")
    assert sim.sched_mode == "event"
    sim.reset()
    model.in_.value = 41
    sim.eval_combinational()
    assert model.out == 42


def test_forced_static_on_opaque_design_still_correct():
    model = _Opaque().elaborate()
    # The silent static -> event downgrade is no longer silent.
    with pytest.warns(RuntimeWarning, match="no effect"):
        sim = SimulationTool(model, sched="static")
    sim.reset()
    model.in_.value = 7
    sim.eval_combinational()
    assert model.out == 8


def test_auto_downgrade_does_not_warn():
    """auto mode falling back to event is expected, not warned."""
    import warnings as _warnings
    with _warnings.catch_warnings():
        _warnings.simplefilter("error")
        SimulationTool(_Opaque().elaborate(), sched="auto")


def test_sched_info_and_repr():
    net = MeshNetworkStructural(RouterRTL, 4, 256, 32, 2).elaborate()
    sim = SimulationTool(net, sched="static")
    info = sim.sched_info()
    assert info["requested"] == "static"
    assert info["mode"] == "static"
    assert info["kernel"] is True
    assert info["kernel_refused"] == []
    assert info["event_blocks"] == 0
    assert info["static_blocks"] == info["total_comb_blocks"] > 0
    assert info["levels"] >= 1
    assert "sched=static/kernel" in repr(sim)
    assert "MeshNetworkStructural" in repr(sim)

    net2 = MeshNetworkStructural(RouterRTL, 4, 256, 32, 2).elaborate()
    sim2 = SimulationTool(net2, sched="static", collect_stats=True)
    info2 = sim2.sched_info()
    assert info2["kernel"] is False
    assert any("collect_stats" in r for r in info2["kernel_refused"])

    sim3 = SimulationTool(_Opaque().elaborate(), sched="auto")
    info3 = sim3.sched_info()
    assert info3["requested"] == "auto"
    assert info3["mode"] == "event"
    assert info3["static_blocks"] == 0
    assert "sched=event" in repr(sim3)


def test_cycle_hooks_fire_each_cycle_and_disable_kernel_fast_path():
    model = _Counter().elaborate()
    sim = SimulationTool(model, sched="static")
    assert sim._kernel is not None
    seen = []
    sim.add_cycle_hook(lambda cyc: seen.append(int(model.count)))
    sim.reset()
    del seen[:]     # hooks fire during reset cycles too
    model.en.value = 1
    sim.run(5)
    # The hook observes the pre-tick state of every cycle, and the
    # model still advances exactly as without hooks.
    assert seen == [0, 1, 2, 3, 4]
    assert model.count == 5


def test_invalid_sched_rejected():
    with pytest.raises(ValueError, match="sched"):
        SimulationTool(_Counter().elaborate(), sched="fast")


# -- kernel generation and stats ----------------------------------------------------


def test_fully_static_design_gets_kernel():
    net = MeshNetworkStructural(RouterRTL, 4, 256, 32, 2).elaborate()
    sim = SimulationTool(net, sched="static")
    desc = sim.schedule.describe()
    assert desc["event_blocks"] == 0
    assert sim._kernel is not None


def test_collect_stats_disables_kernel_but_counts_everything():
    net = MeshNetworkStructural(RouterRTL, 4, 256, 32, 2).elaborate()
    sim = SimulationTool(net, sched="static", collect_stats=True)
    assert sim._kernel is None
    sim.reset()
    sim.run(5)
    report = activity_report(sim)
    # Preseeded zero entries: every comb block appears in the report,
    # fired or not.
    nblocks = sum(
        len(sub.get_comb_blocks()) for sub in net._all_models)
    assert len(report.hot_blocks) >= nblocks
    assert report.num_events > 0


class _Split(Model):
    """Slice connections (directional connectors) + a comb block."""

    def __init__(s):
        s.in_ = InPort(8)
        s.lo = OutPort(4)
        s.hi = OutPort(4)
        s.inv = OutPort(8)
        s.connect(s.in_[0:4], s.lo)
        s.connect(s.in_[4:8], s.hi)

        @s.combinational
        def invert():
            s.inv.value = ~s.in_.value


def test_connector_names_in_activity_report():
    model = _Split().elaborate()
    sim = SimulationTool(model, collect_stats=True)
    sim.reset()
    model.in_.value = 0xA5
    sim.eval_combinational()
    assert model.lo == 0x5 and model.hi == 0xA
    report = activity_report(sim)
    names = [name for name, _count in report.hot_blocks]
    # Connector copies get stable diagnostic names in the report.
    assert any(name.startswith("connect(") for name in names), names
    assert "top.invert" in names


def test_stats_match_between_modes():
    """Total block activity is mode-dependent (event mode may re-run
    blocks while settling) but architectural state must not be."""
    models = [_Counter().elaborate() for _ in range(2)]
    sims = [SimulationTool(m, sched=s, collect_stats=True)
            for m, s in zip(models, ("static", "event"))]
    for sim in sims:
        sim.reset()
    for model in models:
        model.en.value = 1
    _lockstep(models, sims, 10,
              probes=[lambda m: m.count.uint()])


# -- randomized mode equivalence ----------------------------------------------------
#
# Generated-model property test: random DAGs of combinational blocks
# (emitted in shuffled order, so the static scheduler must actually
# topo-sort them) feeding random register updates.  Static and event
# simulation of the same DAG must agree wire for wire, cycle for cycle.
# This generalizes the hand-picked designs above the same way the
# differential cosim sweeps (tests/test_diff_*.py) generalize the
# directed subsystem tests.


def _random_dag_source(seed, nwires=6, nregs=3):
    """Python source for a random fully-analyzable Model subclass."""
    rng = random.Random(seed)

    def expr(avail):
        op = rng.choice(["+", "^", "&", "|"])
        a, b = rng.choice(avail), rng.choice(avail)
        return f"(({a}.uint() {op} {b}.uint()) & 0xFFFF)"

    lines = [
        "class _RandomDag(Model):",
        "    def __init__(s):",
        "        s.in_ = InPort(16)",
        "        s.out = OutPort(16)",
    ]
    lines += [f"        s.r{i} = Wire(16)" for i in range(nregs)]
    lines += [f"        s.w{i} = Wire(16)" for i in range(nwires)]

    blocks = []
    for i in range(nwires):
        # Acyclic by construction: wire i only reads earlier wires,
        # the input, and registers (whose updates break cycles).
        avail = (["s.in_"] + [f"s.r{j}" for j in range(nregs)]
                 + [f"s.w{j}" for j in range(i)])
        blocks.append([
            "        @s.combinational",
            f"        def comb{i}():",
            f"            s.w{i}.value = {expr(avail)}",
        ])
    for i in range(nregs):
        avail = ["s.in_"] + [f"s.w{j}" for j in range(nwires)]
        blocks.append([
            "        @s.tick_rtl",
            f"        def tick{i}():",
            "            if s.reset:",
            f"                s.r{i}.next = {rng.randint(0, 0xFFFF)}",
            "            else:",
            f"                s.r{i}.next = {expr(avail)}",
        ])
    blocks.append([
        "        @s.combinational",
        "        def comb_out():",
        f"            s.out.value = s.w{nwires - 1}.uint()",
    ])
    rng.shuffle(blocks)
    for block in blocks:
        lines += block

    signals = ", ".join([f"s.w{i}" for i in range(nwires)]
                        + [f"s.r{i}" for i in range(nregs)])
    lines += [
        "    def line_trace(s):",
        f"        return ' '.join(str(int(x)) for x in [{signals}])",
    ]
    return "\n".join(lines)


@pytest.mark.parametrize("seed", range(6))
def test_random_dag_static_event_identical(seed):
    namespace = {"Model": Model, "Wire": Wire,
                 "InPort": InPort, "OutPort": OutPort}
    exec(compile(_random_dag_source(seed), f"<dag{seed}>", "exec"),
         namespace)
    models, sims = _pair(namespace["_RandomDag"])

    def stimulus(model, cyc):
        model.in_.value = (cyc * 2654435761 + seed) & 0xFFFF

    _lockstep(models, sims, 40, stimulus,
              probes=[lambda m: m.out.uint()])


# -- cycle trace ring buffer --------------------------------------------------------


class _TracedCounter(Model):
    def __init__(s):
        s.count = OutPort(8)

        @s.tick_rtl
        def logic():
            if s.reset:
                s.count.next = 0
            else:
                s.count.next = s.count + 1

    def line_trace(s):
        return f"count={int(s.count)}"


def test_trace_log_ring_buffer_and_equivalence():
    """``trace_depth`` (used by the cosim harness for divergence
    forensics) keeps the last N line traces without perturbing
    simulation results, in both scheduling modes."""
    for sched in ("static", "event"):
        plain = _TracedCounter().elaborate()
        traced = _TracedCounter().elaborate()
        sim_plain = SimulationTool(plain, sched=sched)
        sim_traced = SimulationTool(traced, sched=sched, trace_depth=4)
        assert sim_plain.trace_log is None
        for sim in (sim_plain, sim_traced):
            sim.reset()
            sim.run(10)
        assert plain.count.uint() == traced.count.uint()
        log = list(sim_traced.trace_log)
        assert len(log) == 4
        cycles = [c for c, _ in log]
        assert cycles == list(range(cycles[0], cycles[0] + 4))
        assert log[-1] == (sim_traced.ncycles,
                           f"count={int(traced.count)}")
