"""Tests for the Verilog TranslationTool.

No Verilog simulator is available offline, so these tests validate the
generated source structurally: module structure, port declarations,
deduplication, always-block balance, and subset enforcement.
"""

import re

import pytest

from repro.core.ast_ir import TranslationError
from repro.core.translation import TranslationTool, translate
from repro.components import (
    BypassQueue,
    IntPipelinedMultiplier,
    Mux,
    NormalQueue,
    Register,
    RoundRobinArbiter,
)
from repro.mem import CacheRTL, MemMsg, TestMemory
from repro.net import MeshNetworkStructural, RouterCL, RouterRTL
from repro.accel import DotProductRTL, MemArbiter, XcelMsg
from repro.proc import ProcRTL


def _translate(model):
    return TranslationTool(model.elaborate()).verilog


def test_register_translation():
    text = _translate(Register(8))
    assert "module Register_" in text
    assert "input  wire [7:0] in_" in text
    assert "output reg  [7:0] out" in text
    assert "always @(posedge clk)" in text
    assert "out <= in_;" in text


def test_mux_translation_has_array_and_comb():
    text = _translate(Mux(8, 4))
    assert "always @(*)" in text
    assert "in__arr" in text
    assert "out = in__arr[sel];" in text


def test_single_bit_ports_have_no_range():
    text = _translate(Register(1))
    assert "input  wire in_" in text
    assert re.search(r"output reg\s+out", text)


def test_structural_model_instantiates_children():
    from tests.test_core_smoke import MuxReg
    text = _translate(MuxReg(8, 4))
    assert text.count("endmodule") == 3
    assert re.search(r"Register_\w+ reg_", text)
    assert re.search(r"Mux_\w+ mux", text)
    assert ".clk(clk)" in text


def test_queue_translation_uses_memory_array():
    text = _translate(NormalQueue(4, 16))
    assert "entries_arr [0:3]" in text
    assert "always @(posedge clk)" in text


def test_balanced_blocks_everywhere():
    for model in (Register(8), Mux(8, 4), NormalQueue(2, 8),
                  BypassQueue(8), RoundRobinArbiter(4),
                  IntPipelinedMultiplier(16, 2), ProcRTL(),
                  CacheRTL(MemMsg(), MemMsg(), 8),
                  DotProductRTL(MemMsg(), XcelMsg()),
                  MemArbiter(MemMsg()),
                  RouterRTL(0, 4, 64, 16, 2)):
        text = _translate(model)
        n_mod = len(re.findall(r"^module ", text, re.MULTILINE))
        n_endmod = len(re.findall(r"^endmodule", text, re.MULTILINE))
        assert n_mod == n_endmod, type(model).__name__
        n_begin = len(re.findall(r"\bbegin\b", text))
        n_end = len(re.findall(r"\bend\b", text))
        assert n_begin == n_end, type(model).__name__


def test_verilog_lint_clean_for_all_library_designs():
    """The structural Verilog linter finds no problems in anything the
    translator emits for the library and case-study RTL."""
    from repro.tools import lint_verilog
    from repro.net import MeshNetworkStructural
    designs = [
        Register(8), Mux(8, 4), NormalQueue(2, 8), BypassQueue(8),
        RoundRobinArbiter(4), IntPipelinedMultiplier(16, 2), ProcRTL(),
        CacheRTL(MemMsg(), MemMsg(), 8),
        DotProductRTL(MemMsg(), XcelMsg()), MemArbiter(MemMsg()),
        MeshNetworkStructural(RouterRTL, 4, 64, 16, 2),
    ]
    for model in designs:
        errors = lint_verilog(_translate(model))
        assert errors == [], (type(model).__name__,
                              [str(e) for e in errors[:5]])


def test_verilog_lint_catches_problems():
    from repro.tools import lint_verilog
    bad = """
module broken
(
  input  wire clk,
  input  wire reset,
  output wire out
);
  assign out = missing_wire;
  Undefined u0 (.clk(clk), .reset(reset));
endmodule
"""
    errors = lint_verilog(bad)
    messages = " ".join(str(e) for e in errors)
    assert "missing_wire" in messages
    assert "Undefined" in messages


def test_mesh_translation_dedupes_queues():
    text = _translate(MeshNetworkStructural(RouterRTL, 16, 64, 16, 2))
    # 16 routers have distinct coordinates (distinct constants), but
    # all 80 queues share one definition.
    assert len(re.findall(r"module NormalQueue_\w+\n", text)) == 1
    assert text.count("NormalQueue_") >= 16 * 5


def test_same_params_dedupe_to_one_module():
    class Two(Register.__bases__[0]):     # Model
        def __init__(s):
            s.r0 = Register(8)
            s.r1 = Register(8)
            s.connect(s.r0.out, s.r1.in_)

    text = _translate(Two())
    assert len(re.findall(r"module Register_\w+\n", text)) == 1


def test_fl_model_rejected():
    with pytest.raises(TranslationError):
        _translate(TestMemory())


def test_cl_model_rejected():
    with pytest.raises(TranslationError):
        _translate(RouterCL(0, 4, 64, 16, 2))


def test_translate_helper_function():
    text = translate(Register(4).elaborate())
    assert "module Register_" in text


def test_to_file(tmp_path):
    path = tmp_path / "out.v"
    TranslationTool(Register(8).elaborate()).to_file(str(path))
    assert "endmodule" in path.read_text()


def test_proc_translation_mentions_regfile_array():
    text = _translate(ProcRTL())
    assert "rf_arr [0:31]" in text
    assert "always @(posedge clk)" in text


def test_constant_tie_translated():
    from repro.core import Model, OutPort, Wire

    class Tied(Model):
        def __init__(s):
            s.out = OutPort(8)
            s.connect(s.out, 0x5A)

    text = _translate(Tied())
    assert "assign out = 8'd90;" in text


def test_slice_connection_translated():
    from repro.core import InPort, Model, OutPort

    class SliceConn(Model):
        def __init__(s):
            s.in_ = InPort(8)
            s.hi = OutPort(4)
            s.connect(s.in_[4:8], s.hi)

    text = _translate(SliceConn())
    assert "assign hi = in_[7:4];" in text
