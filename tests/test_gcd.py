"""Tests for the GCD tutorial unit — one bench, three levels."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Model, SimulationTool
from repro.core.simjit import SimJITRTL
from repro.core.translation import TranslationTool
from repro.components import (
    GcdReqMsg,
    GcdUnitCL,
    GcdUnitFL,
    GcdUnitRTL,
    gcd_cycle_count,
)
from repro.tools import lint_verilog

LEVELS = [GcdUnitFL, GcdUnitCL, GcdUnitRTL]


def _run_gcd(unit, pairs, max_cycles=5000):
    """Shared latency-insensitive test bench (the paper's reuse story:
    this exact function drives FL, CL, and RTL units)."""
    model = unit().elaborate()
    sim = SimulationTool(model)
    sim.reset()
    results = []
    for a, b in pairs:
        model.req.msg.value = GcdReqMsg.mk(a, b)
        model.req.val.value = 1
        model.resp.rdy.value = 1
        for _ in range(max_cycles):
            accepted = int(model.req.val) and int(model.req.rdy)
            sim.cycle()
            if accepted:
                break
        else:
            raise AssertionError("request never accepted")
        model.req.val.value = 0
        start = sim.ncycles
        for _ in range(max_cycles):
            if int(model.resp.val) and int(model.resp.rdy):
                results.append((int(model.resp.msg), sim.ncycles - start))
                sim.cycle()
                break
            sim.cycle()
        else:
            raise AssertionError("no response")
    return results


PAIRS = [(15, 5), (3, 9), (0, 4), (7, 0), (13, 7), (1024, 768), (1, 1)]


@pytest.mark.parametrize("unit", LEVELS)
def test_gcd_correct_at_every_level(unit):
    results = _run_gcd(unit, PAIRS)
    for (a, b), (got, _) in zip(PAIRS, results):
        assert got == math.gcd(a, b), (a, b)


def test_cl_and_rtl_latencies_match():
    """The CL model predicts the RTL datapath's latency."""
    cl = _run_gcd(GcdUnitCL, PAIRS)
    rtl = _run_gcd(GcdUnitRTL, PAIRS)
    for (a, b), (_, lat_cl), (_, lat_rtl) in zip(PAIRS, cl, rtl):
        assert abs(lat_cl - lat_rtl) <= 2, (a, b, lat_cl, lat_rtl)


def test_fl_faster_than_rtl():
    fl = _run_gcd(GcdUnitFL, [(1024, 768)])
    rtl = _run_gcd(GcdUnitRTL, [(1024, 768)])
    assert fl[0][1] < rtl[0][1]


def test_rtl_simjit_equivalent():
    from tests.test_simjit import assert_cycle_exact
    assert_cycle_exact(GcdUnitRTL, ncycles=300)


def test_rtl_translates_to_clean_verilog():
    text = TranslationTool(GcdUnitRTL().elaborate()).verilog
    assert "module GcdUnitRTL_" in text
    assert lint_verilog(text) == []


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=0xFFFF),
       st.integers(min_value=0, max_value=0xFFFF))
def test_prop_cycle_count_terminates_and_bounds(a, b):
    # The subtractive algorithm is linear in the operand magnitude
    # (gcd(1, n) subtracts n times) — each iteration either swaps
    # (at most every other step) or strictly shrinks a.
    count = gcd_cycle_count(a, b)
    assert 1 <= count <= 2 * (a + b) + 2


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=2000),
       st.integers(min_value=0, max_value=2000))
def test_prop_rtl_gcd_matches_math(a, b):
    (got, _), = _run_gcd(GcdUnitRTL, [(a, b)], max_cycles=7000)
    assert got == math.gcd(a, b)
