"""Unit tests for the SimulationTool."""

import pytest

from repro import (
    InPort,
    Model,
    OutPort,
    SimulationError,
    SimulationTool,
    Wire,
)


class _Counter(Model):
    def __init__(s, nbits=8):
        s.en = InPort(1)
        s.count = OutPort(nbits)

        @s.tick_rtl
        def logic():
            if s.reset:
                s.count.next = 0
            elif s.en:
                s.count.next = s.count + 1


def test_counter_counts():
    model = _Counter().elaborate()
    sim = SimulationTool(model)
    sim.reset()
    assert model.count == 0
    model.en.value = 1
    sim.run(5)
    assert model.count == 5
    model.en.value = 0
    sim.run(3)
    assert model.count == 5


def test_counter_wraps():
    model = _Counter(nbits=2).elaborate()
    sim = SimulationTool(model)
    sim.reset()
    model.en.value = 1
    sim.run(5)
    assert model.count == 1


def test_ncycles_tracks():
    model = _Counter().elaborate()
    sim = SimulationTool(model)
    sim.reset()
    sim.run(10)
    assert sim.ncycles == 12     # 2 reset cycles + 10


def test_reset_idiom():
    model = _Counter().elaborate()
    sim = SimulationTool(model)
    model.en.value = 1
    sim.run(3)
    sim.reset()
    assert model.count == 0
    assert model.reset == 0


class _CombChain(Model):
    """Three chained combinational blocks — fixpoint must settle all."""

    def __init__(s):
        s.in_ = InPort(8)
        s.out = OutPort(8)
        s.a = Wire(8)
        s.b = Wire(8)

        @s.combinational
        def one():
            s.a.value = s.in_ + 1

        @s.combinational
        def two():
            s.b.value = s.a + 1

        @s.combinational
        def three():
            s.out.value = s.b + 1


def test_comb_chain_settles():
    model = _CombChain().elaborate()
    sim = SimulationTool(model)
    model.in_.value = 10
    sim.eval_combinational()
    assert model.out == 13
    model.in_.value = 20
    sim.eval_combinational()
    assert model.out == 23


def test_comb_not_reexecuted_when_value_unchanged():
    calls = []

    class Watch(Model):
        def __init__(s):
            s.in_ = InPort(8)
            s.out = OutPort(8)

            @s.combinational
            def logic():
                calls.append(1)
                s.out.value = s.in_.value

    model = Watch().elaborate()
    sim = SimulationTool(model)
    sim.eval_combinational()
    baseline = len(calls)
    model.in_.value = 0      # same value: no event
    sim.eval_combinational()
    assert len(calls) == baseline


class _CombLoop(Model):
    """Oscillating combinational loop: a = ~b, b = a."""

    def __init__(s):
        s.a = Wire(1)
        s.b = Wire(1)

        @s.combinational
        def one():
            s.a.value = ~s.b.value

        @s.combinational
        def two():
            s.b.value = s.a.value


def test_comb_loop_detected():
    model = _CombLoop().elaborate()
    with pytest.raises(SimulationError, match="loop"):
        sim = SimulationTool(model)
        sim.eval_combinational()


class _TwoStage(Model):
    """Two registers back to back: data takes two cycles."""

    def __init__(s):
        s.in_ = InPort(8)
        s.out = OutPort(8)
        s.mid = Wire(8)

        @s.tick_rtl
        def stage1():
            s.mid.next = s.in_.value

        @s.tick_rtl
        def stage2():
            s.out.next = s.mid.value


def test_pipeline_latency_two_cycles():
    model = _TwoStage().elaborate()
    sim = SimulationTool(model)
    sim.reset()
    model.in_.value = 7
    sim.cycle()
    assert model.out == 0
    sim.cycle()
    assert model.out == 7


def test_tick_sees_pre_edge_values():
    """Both stages read old state: classic shift-register semantics,
    independent of tick execution order."""
    model = _TwoStage().elaborate()
    sim = SimulationTool(model)
    sim.reset()
    model.in_.value = 1
    sim.cycle()
    model.in_.value = 2
    sim.cycle()
    assert model.mid == 2
    assert model.out == 1


class _RegCombReg(Model):
    """reg -> comb -> reg: comb must re-settle after the flop."""

    def __init__(s):
        s.in_ = InPort(8)
        s.out = OutPort(8)
        s.r1 = Wire(8)
        s.doubled = Wire(8)

        @s.tick_rtl
        def front():
            s.r1.next = s.in_.value

        @s.combinational
        def double():
            s.doubled.value = s.r1 + s.r1

        @s.tick_rtl
        def back():
            s.out.next = s.doubled.value


def test_comb_between_registers():
    model = _RegCombReg().elaborate()
    sim = SimulationTool(model)
    sim.reset()
    model.in_.value = 5
    sim.cycle()      # r1 <- 5, doubled settles to 10
    sim.cycle()      # out <- 10
    assert model.out == 10


def test_line_trace_runs(capsys):
    class Traced(Model):
        def __init__(s):
            s.out = OutPort(4)

            @s.tick_rtl
            def logic():
                s.out.next = s.out + 1

        def line_trace(s):
            return f"out={int(s.out)}"

    model = Traced().elaborate()
    sim = SimulationTool(model, line_trace=True)
    sim.cycle()
    captured = capsys.readouterr()
    assert "out=" in captured.out
