"""Tests for the memory-over-network composition."""

import pytest

from repro.core import Model, SimulationTool
from repro.mem import MemReqMsg
from repro.net import RemoteMemSystem, RouterCL, RouterRTL
from repro.net.mem_over_net import MEM_PAYLOAD_NBITS
from repro.proc import ProcFL, assemble
from repro.tools import activity_report


class _MemDriver:
    """Blocking transactions against one client's memory interface."""

    def __init__(self, sim, port, max_cycles=400):
        self.sim = sim
        self.port = port
        self.max_cycles = max_cycles

    def transact(self, req):
        port, sim = self.port, self.sim
        port.req_msg.value = req
        port.req_val.value = 1
        port.resp_rdy.value = 1
        for _ in range(self.max_cycles):
            accepted = int(port.req_val) and int(port.req_rdy)
            sim.cycle()
            if accepted:
                break
        else:
            raise AssertionError("request not accepted")
        port.req_val.value = 0
        for _ in range(self.max_cycles):
            if int(port.resp_val) and int(port.resp_rdy):
                resp = port.resp_msg.value
                sim.cycle()
                port.resp_rdy.value = 0
                return resp
            sim.cycle()
        raise AssertionError("no response over the network")

    def read(self, addr):
        return int(self.transact(MemReqMsg.mk_rd(addr)).data)

    def write(self, addr, data):
        self.transact(MemReqMsg.mk_wr(addr, data))


def _system(router_type=RouterCL, nclients=3, nrouters=4):
    system = RemoteMemSystem(
        nclients=nclients, nrouters=nrouters,
        router_type=router_type).elaborate()
    sim = SimulationTool(system)
    sim.reset()
    return system, sim


@pytest.mark.parametrize("router_type", [RouterCL, RouterRTL])
def test_remote_read_write(router_type):
    system, sim = _system(router_type)
    driver = _MemDriver(sim, system.mem_ifcs[0])
    driver.write(0x100, 0xBEEF)
    assert driver.read(0x100) == 0xBEEF
    assert system.server.read_word(0x100) == 0xBEEF


def test_memory_shared_between_clients():
    system, sim = _system()
    d0 = _MemDriver(sim, system.mem_ifcs[0])
    d2 = _MemDriver(sim, system.mem_ifcs[2])
    d0.write(0x40, 111)
    assert d2.read(0x40) == 111
    d2.write(0x44, 222)
    assert d0.read(0x44) == 222


def test_backdoor_load():
    system, sim = _system()
    system.server.load(0x200, [1, 2, 3])
    driver = _MemDriver(sim, system.mem_ifcs[1])
    assert driver.read(0x208) == 3


def test_concurrent_clients_all_served():
    """All clients issue requests in flight at once — ordering within
    each src/dest pair must hold and nothing may be lost."""
    system, sim = _system(nclients=3)
    ports = system.mem_ifcs
    for i, port in enumerate(ports):
        system.server.write_word(0x1000 + 4 * i, 500 + i)
        port.req_msg.value = MemReqMsg.mk_rd(0x1000 + 4 * i)
        port.req_val.value = 1
        port.resp_rdy.value = 1
    got = {}
    for _ in range(300):
        accepted = [int(p.req_val) and int(p.req_rdy) for p in ports]
        responded = [
            (i, int(p.resp_msg.value.data))
            for i, p in enumerate(ports)
            if int(p.resp_val) and int(p.resp_rdy)
        ]
        sim.cycle()
        for i, p in enumerate(ports):
            if accepted[i]:
                p.req_val.value = 0
        for i, data in responded:
            got[i] = data
            ports[i].resp_rdy.value = 0
        if len(got) == 3:
            break
    assert got == {0: 500, 1: 501, 2: 502}


def test_processor_executes_from_remote_memory():
    """A port-based FL processor fetching and loading/storing across
    the mesh — full vertical composition with zero processor changes."""

    class Top(Model):
        def __init__(s):
            s.system = RemoteMemSystem(nclients=2, nrouters=4)
            s.proc = ProcFL()
            s.connect(s.proc.imem_ifc.req, s.system.mem_ifcs[0].req)
            s.connect(s.system.mem_ifcs[0].resp, s.proc.imem_ifc.resp)
            s.connect(s.proc.dmem_ifc.req, s.system.mem_ifcs[1].req)
            s.connect(s.system.mem_ifcs[1].resp, s.proc.dmem_ifc.resp)

    words = assemble("""
        li  r1, 0x2000
        li  r2, 21
        add r2, r2, r2
        sw  r2, 0(r1)
        halt
    """)
    top = Top().elaborate()
    top.system.server.load(0, words)
    sim = SimulationTool(top)
    sim.reset()
    while not int(top.proc.done):
        sim.cycle()
        assert sim.ncycles < 20_000
    assert top.system.server.read_word(0x2000) == 42


def test_activity_report_on_network_system():
    # RTL routers so the design has combinational blocks to count.
    sim = SimulationTool(
        RemoteMemSystem(nclients=2, router_type=RouterRTL).elaborate(),
        collect_stats=True)
    sim.reset()
    driver = _MemDriver(sim, sim.model.mem_ifcs[0])
    driver.write(0x10, 1)
    report = activity_report(sim)
    assert report.ncycles > 0
    assert report.num_events > 0
    assert report.events_per_cycle > 0
    assert "events/cycle" in report.summary()
    assert report.hot_blocks[0][1] >= report.hot_blocks[-1][1]
