"""Randomized SimJIT backend verification.

Generates models whose combinational block computes a random expression
tree over the translatable operator set, then checks the compiled C
model against the interpreted simulator on random inputs.  This fuzzes
exactly the layer where C integer semantics could diverge from the
Python reference (masking, signedness, shift edge cases).
"""

import random

import pytest

from repro.core import InPort, Model, OutPort, SimulationTool
from repro.core.simjit import SimJITRTL

_BIN_OPS = ["+", "-", "*", "&", "|", "^"]
_CMP_OPS = ["==", "!=", "<", "<=", ">", ">="]


def _gen_expr(rng, inputs, depth):
    """Build a random expression as Python source over ``s.in{i}``."""
    if depth == 0 or rng.random() < 0.3:
        if rng.random() < 0.7:
            return f"s.in{rng.randrange(inputs)}.uint()"
        return str(rng.randint(0, 255))
    kind = rng.random()
    left = _gen_expr(rng, inputs, depth - 1)
    right = _gen_expr(rng, inputs, depth - 1)
    if kind < 0.55:
        op = rng.choice(_BIN_OPS)
        return f"({left} {op} {right})"
    if kind < 0.70:
        op = rng.choice(_CMP_OPS)
        return f"(1 if {left} {op} {right} else 0)"
    if kind < 0.80:
        shamt = rng.randint(0, 7)
        op = rng.choice(["<<", ">>"])
        return f"({left} {op} {shamt})"
    if kind < 0.90:
        cond = _gen_expr(rng, inputs, 0)
        return f"(({left}) if ({cond}) != 0 else ({right}))"
    return f"(~({left}))"


def _make_model(seed, tmp_path, nin=3, width=16, depth=3):
    """Generate a model class in a real module file (block translation
    needs inspect.getsource to work)."""
    rng = random.Random(seed)
    expr = _gen_expr(rng, nin, depth)
    ports = "\n".join(
        f"        s.in{i} = InPort({width})" for i in range(nin))
    source = f"""
from repro.core import InPort, Model, OutPort


class FuzzModel(Model):
    def __init__(s):
{ports}
        s.out = OutPort({width})
        s.out_reg = OutPort({width})

        @s.combinational
        def comb():
            s.out.value = {expr}

        @s.tick_rtl
        def tick():
            s.out_reg.next = {expr}
"""
    path = tmp_path / f"fuzz_model_{seed}.py"
    path.write_text(source)
    import importlib.util
    spec = importlib.util.spec_from_file_location(
        f"fuzz_model_{seed}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.FuzzModel


@pytest.mark.parametrize("seed", range(12))
def test_random_expression_interp_vs_jit(seed, tmp_path):
    cls = _make_model(seed, tmp_path)
    interp = cls().elaborate()
    jit = SimJITRTL(cls().elaborate()).specialize().elaborate()
    sim_i = SimulationTool(interp)
    sim_j = SimulationTool(jit)
    sim_i.reset()
    sim_j.reset()
    rng = random.Random(seed * 7 + 1)
    for cycle in range(40):
        for i in range(3):
            value = rng.getrandbits(16)
            getattr(interp, f"in{i}").value = value
            getattr(jit, f"in{i}").value = value
        sim_i.cycle()
        sim_j.cycle()
        assert int(interp.out) == int(jit.out), (seed, cycle)
        assert int(interp.out_reg) == int(jit.out_reg), (seed, cycle)


def _make_dag_model(seed, tmp_path, nwires=8, width=16):
    """Random multi-block combinational DAG: wire_i is computed by its
    own block from earlier wires/inputs — stresses the SimJIT static
    scheduler and the interpreter's event-driven fixpoint equally."""
    rng = random.Random(seed)
    blocks = []
    for i in range(nwires):
        sources = [f"s.in{j}.uint()" for j in range(2)] + \
                  [f"s.w{j}.uint()" for j in range(i)]
        a, b = rng.choice(sources), rng.choice(sources)
        op = rng.choice(_BIN_OPS)
        blocks.append(f"""
        @s.combinational
        def blk{i}():
            s.w{i}.value = ({a} {op} {b})
""")
    wires = "\n".join(
        f"        s.w{i} = Wire({width})" for i in range(nwires))
    body = "".join(blocks)
    source = f"""
from repro.core import InPort, Model, OutPort, Wire


class DagModel(Model):
    def __init__(s):
        s.in0 = InPort({width})
        s.in1 = InPort({width})
        s.out = OutPort({width})
{wires}
{body}
        @s.combinational
        def out_blk():
            s.out.value = s.w{nwires - 1}.uint()
"""
    path = tmp_path / f"dag_model_{seed}.py"
    path.write_text(source)
    import importlib.util
    spec = importlib.util.spec_from_file_location(f"dag_model_{seed}",
                                                  path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.DagModel


@pytest.mark.parametrize("seed", range(6))
def test_random_comb_dag_interp_vs_jit(seed, tmp_path):
    cls = _make_dag_model(seed, tmp_path)
    interp = cls().elaborate()
    jit = SimJITRTL(cls().elaborate()).specialize().elaborate()
    sim_i = SimulationTool(interp)
    sim_j = SimulationTool(jit)
    rng = random.Random(seed + 99)
    for _ in range(30):
        a, b = rng.getrandbits(16), rng.getrandbits(16)
        interp.in0.value = a
        interp.in1.value = b
        jit.in0.value = a
        jit.in1.value = b
        sim_i.eval_combinational()
        sim_j.eval_combinational()
        assert int(interp.out) == int(jit.out), seed


@pytest.mark.parametrize("width", [1, 7, 16, 31, 32, 33, 63, 64])
def test_width_edge_cases(width):
    """Arithmetic wrap-around at awkward widths, including >= 64 bits
    where the C backend switches to __int128 behaviour."""

    class Wrap(Model):
        def __init__(s):
            s.a = InPort(width)
            s.b = InPort(width)
            s.sum = OutPort(width)
            s.prod = OutPort(width)

            @s.combinational
            def logic():
                s.sum.value = s.a.uint() + s.b.uint()
                s.prod.value = s.a.uint() * s.b.uint()

    interp = Wrap().elaborate()
    jit = SimJITRTL(Wrap().elaborate()).specialize().elaborate()
    sim_i = SimulationTool(interp)
    sim_j = SimulationTool(jit)
    rng = random.Random(width)
    for _ in range(25):
        a, b = rng.getrandbits(width), rng.getrandbits(width)
        interp.a.value = a
        interp.b.value = b
        jit.a.value = a
        jit.b.value = b
        sim_i.eval_combinational()
        sim_j.eval_combinational()
        assert int(interp.sum) == int(jit.sum), width
        if width <= 32:
            # Products of >32-bit operands overflow the int64 local
            # convention (documented subset limit).
            assert int(interp.prod) == int(jit.prod), width
