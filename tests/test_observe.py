"""Waveform-observatory tests (src/repro/observe/).

Covers the three pillars and their substrate-portability contract:

- flight recorder ring-buffer semantics (change compression, rolling
  base, depth eviction), window serialization, and VCD export;
- watchpoint combinators (edges, stability, implication windows,
  boolean algebra) and firing policies (log / callback / dump / halt /
  once);
- cross-substrate equivalence: identical windows and identical fire
  cycles under event, static(+kernel), and SimJIT execution on the
  cache and mesh DUTs;
- post-mortem forensics: co-sim divergence, Watchdog trip, and an
  unhandled exception in ``cycle()`` each auto-produce a
  ``repro-observe-v1`` bundle, bit-identical across substrates;
- the ``python -m repro.observe.dump`` ASCII renderer;
- the ``line_trace_sink`` satellite.
"""

import json
import os

import pytest

from repro import (
    InPort,
    Model,
    OutPort,
    SimulationTool,
    Wire,
    rose,
    fell,
    changed,
    value_is,
    when,
    stable_for,
    implies_within,
)
from repro.observe import (
    FlightRecorder,
    RecorderWindow,
    WatchpointHit,
    load_bundle,
)
from repro.observe.dump import main as dump_main, render
from repro.resilience import Watchdog, WatchdogTimeout
from repro.verif import CoSimHarness, CoSimMismatch, RNG
from repro.verif.duts import make_cache_dut, make_mesh_dut
from repro.verif.strategies import mem_request_strategy

HAVE_CC = True
try:
    import cffi  # noqa: F401
except ImportError:          # pragma: no cover - image bakes cffi in
    HAVE_CC = False

needs_cc = pytest.mark.skipif(not HAVE_CC, reason="cffi unavailable")


# -- fixtures -----------------------------------------------------------------


class _Counter(Model):
    """4-bit enable-gated counter with observe() registrations."""

    def __init__(s):
        s.en = InPort(1)
        s.out = OutPort(4)
        s.count = Wire(4)
        s.par = Wire(1)
        s.observe(s.count, s.par)

        @s.tick_rtl
        def tick():
            if s.reset:
                s.count.next = 0
            elif s.en:
                s.count.next = (s.count + 1) & 0xF

        @s.combinational
        def comb():
            s.out.value = s.count
            s.par.value = s.count & 1


def _counter_sim(**kwargs):
    sim = SimulationTool(_Counter().elaborate(), **kwargs)
    sim.reset()
    return sim


# -- flight recorder ----------------------------------------------------------


def test_recorder_records_change_compressed_window():
    sim = _counter_sim()
    rec = sim.flight_recorder(signals=["count", "en"], depth=32)
    sim.model.en.value = 1
    sim.run(5)
    win = rec.window()
    assert win.names == ["count", "en"]
    assert win.widths == [4, 1]
    assert win.cycles() == [3, 4, 5, 6, 7]
    assert list(win.rows()) == [
        (3, (1, 1)), (4, (2, 1)), (5, (3, 1)),
        (6, (4, 1)), (7, (5, 1))]
    # en only changed on the first recorded cycle: later entries are
    # change-compressed down to the count delta alone.
    assert win.changes[0][1] == [(0, 1), (1, 1)]
    assert win.changes[1][1] == [(0, 2)]
    assert win.values_at(5) == (3, 1)
    with pytest.raises(KeyError):
        win.values_at(99)


def test_recorder_depth_evicts_into_base():
    sim = _counter_sim()
    rec = sim.flight_recorder(signals=["count"], depth=4)
    sim.model.en.value = 1
    sim.run(10)
    win = rec.window()
    assert win.ncycles == 4
    assert win.cycles() == [9, 10, 11, 12]
    # The rolling base reconstructs the oldest retained cycle exactly.
    assert list(win.rows()) == [(9, (7,)), (10, (8,)),
                                (11, (9,)), (12, (10,))]
    assert rec.nsamples == 10                     # armed post-reset


def test_recorder_idle_cycles_store_no_changes():
    sim = _counter_sim()
    rec = sim.flight_recorder(signals=["count"], depth=16)
    sim.model.en.value = 0
    sim.run(6)
    win = rec.window()
    assert win.ncycles == 6
    assert all(ch == [] or ch == () or list(ch) == []
               for _, ch in win.changes)
    assert list(win.rows())[-1] == (8, (0,))


def test_recorder_signals_none_uses_model_observe():
    sim = _counter_sim()
    rec = sim.flight_recorder(depth=8)           # signals=None
    assert rec.signal_names == ["count", "par"]
    sim.model.en.value = 1
    sim.run(3)
    assert list(rec.window().rows())[-1] == (5, (3, 1))


def test_recorder_rejects_bad_specs_and_empty():
    sim = SimulationTool(_CounterNoObserve().elaborate())
    with pytest.raises(ValueError, match="nothing to record"):
        sim.flight_recorder()
    with pytest.raises(TypeError, match="cannot observe"):
        sim.flight_recorder(signals=[42])
    with pytest.raises(ValueError, match="depth"):
        FlightRecorder(signals=["count"], depth=0)
    rec = sim.flight_recorder(signals=["count"])
    with pytest.raises(RuntimeError, match="already attached"):
        rec.attach(sim)


class _CounterNoObserve(Model):
    def __init__(s):
        s.en = InPort(1)
        s.count = Wire(4)
        s.out = OutPort(4)

        @s.tick_rtl
        def tick():
            if s.reset:
                s.count.next = 0
            elif s.en:
                s.count.next = (s.count + 1) & 0xF

        @s.combinational
        def comb():
            s.out.value = s.count


def test_recorder_detach_stops_sampling():
    sim = _counter_sim()
    rec = sim.flight_recorder(signals=["count"], depth=16)
    sim.model.en.value = 1
    sim.run(3)
    rec.detach()
    sim.run(5)
    assert rec.window().cycles() == [3, 4, 5]
    assert not sim._observers
    rec.detach()                                  # idempotent


def test_window_dict_roundtrip_and_vcd(tmp_path):
    sim = _counter_sim()
    rec = sim.flight_recorder(signals=["count", "par"], depth=16)
    sim.model.en.value = 1
    sim.run(6)
    win = rec.window()
    data = json.loads(json.dumps(win.to_dict()))
    assert RecorderWindow.from_dict(data) == win

    path = tmp_path / "win.vcd"
    win.to_vcd(path)
    text = path.read_text()
    assert "$var wire 4 a count $end" in text
    assert "$var wire 1 b par $end" in text
    assert "$dumpvars" in text
    # Timestep lines only where something changed; the window replays
    # exactly the recorded cycle span.
    assert f"#{win.base_cycle}" in text
    assert f"#{win.cycles()[-1]}" in text


def test_recorder_keeps_mega_cycle_kernel_and_fast_path():
    sim = _counter_sim(sched="static")
    assert sim.sched_info()["kernel"] is True
    rec = sim.flight_recorder(signals=["count"], depth=8)
    sim.model.en.value = 1
    sim.run(20)
    # The kernel is still in use (not refused) while the recorder
    # samples every cycle.
    assert sim.sched_info()["kernel"] is True
    assert rec.nsamples == 20
    rec.detach()
    before = sim.ncycles
    sim.run(10)                                   # back on the fast path
    assert sim.ncycles == before + 10
    assert rec.nsamples == 20


class _Counted(Model):
    """Counter-tap fixture: a python-kind telemetry counter."""

    def __init__(s):
        s.en = InPort(1)
        s.out = OutPort(4)
        s.count = Wire(4)
        s.evens = s.counter("evens", "even count values latched")

        @s.tick_rtl
        def tick():
            if s.reset:
                s.count.next = 0
            elif s.en:
                s.count.next = (s.count + 1) & 0xF

        @s.tick_fl
        def observe_evens():
            if not s.reset and int(s.count.value) % 2 == 0:
                s.evens.incr()

        @s.combinational
        def comb():
            s.out.value = s.count


def test_recorder_taps_telemetry_counters():
    sim = SimulationTool(_Counted().elaborate())
    sim.reset()
    rec = sim.flight_recorder(signals=["evens", "count"], depth=16)
    wp = sim.watch(changed("evens"), name="even-seen")
    sim.model.en.value = 1
    sim.run(6)
    rows = list(rec.window().rows())
    assert [v for _, (v, _) in rows] == [1, 1, 2, 2, 3, 3]
    assert wp.fire_cycles() == [3, 5, 7]


# -- watchpoints --------------------------------------------------------------


def test_edge_and_value_watchpoints():
    sim = _counter_sim()
    wp_rose = sim.watch(rose("par"), name="par-rise")
    wp_fell = sim.watch(fell("par"), name="par-fall")
    wp_chg = sim.watch(changed("count"), name="count-chg")
    wp_val = sim.watch(value_is("count", 3, 5), name="count-3or5")
    sim.model.en.value = 1
    sim.run(6)
    # count=1 at cycle 3 ... count=6 at cycle 8; par = count & 1.
    assert wp_rose.fire_cycles() == [3, 5, 7]
    assert wp_fell.fire_cycles() == [4, 6, 8]
    assert wp_chg.fire_cycles() == [3, 4, 5, 6, 7, 8]
    assert wp_val.fire_cycles() == [5, 7]
    assert wp_val.fires[0][1] == {"count": 3}


def test_predicate_and_boolean_algebra():
    sim = _counter_sim()
    wp = sim.watch(when(lambda c, p: c > 3 and not p, "count", "par"),
                   name="big-even")
    wp2 = sim.watch(rose("par") & value_is("count", 5), name="and")
    wp3 = sim.watch(~changed("count"), name="idle")
    sim.model.en.value = 1
    sim.run(6)
    sim.model.en.value = 0
    sim.run(2)
    assert wp.fire_cycles() == [6, 8, 9, 10]      # count 4,6,6,6
    assert wp2.fire_cycles() == [7]
    assert wp3.fire_cycles() == [9, 10]


def test_stable_for_fires_once_per_stretch():
    sim = _counter_sim()
    wp = sim.watch(stable_for("count", 3), name="stuck")
    sim.model.en.value = 1
    sim.run(4)
    sim.model.en.value = 0
    sim.run(7)
    sim.model.en.value = 1
    sim.run(2)
    # count stops changing after cycle 6; stable streak hits 3 at
    # cycle 9, fires once, and re-arms only after the next change.
    assert wp.fire_cycles() == [9]
    with pytest.raises(ValueError, match="n >= 1"):
        stable_for("count", 0)


def test_implies_within_violation_and_satisfaction():
    sim = _counter_sim()
    # par rises every 2 cycles while counting: rose(par) is always
    # followed by fell(par) within 2 cycles -> never fires.
    ok = sim.watch(implies_within(rose("par"), fell("par"), 2),
                   name="ok")
    # ... but never followed by count==15 within 3 cycles -> fires 3
    # cycles after every rise.
    bad = sim.watch(
        implies_within(rose("par"), value_is("count", 15), 3),
        name="bad")
    sim.model.en.value = 1
    sim.run(8)
    assert ok.fire_cycles() == []
    assert bad.fire_cycles() == [6, 8, 10]        # rises at 3, 5, 7
    with pytest.raises(ValueError, match="n >= 1"):
        implies_within(rose("par"), fell("par"), 0)
    with pytest.raises(TypeError):
        implies_within("par", fell("par"), 2)


def test_watchpoint_once_callback_and_detach():
    sim = _counter_sim()
    seen = []
    wp = sim.watch(rose("par"), name="once",
                   callback=lambda w, c: seen.append(c), once=True)
    sim.model.en.value = 1
    sim.run(6)
    assert seen == [3]
    assert wp.n_fires == 1
    assert wp.sim is None
    assert wp not in sim._watchpoints


def test_watchpoint_halt_raises_structured_hit():
    sim = _counter_sim()
    sim.watch(value_is("count", 4), name="stop-at-4", halt=True)
    sim.model.en.value = 1
    with pytest.raises(WatchpointHit) as excinfo:
        sim.run(20)
    diag = excinfo.value.diagnostic
    assert diag["name"] == "stop-at-4"
    assert diag["cycle"] == 6
    assert diag["values"] == {"count": 4}
    assert "value_is" in diag["condition"]
    # The halting cycle completed: state is consistent at count == 4.
    assert sim.ncycles == 6
    assert int(sim.model.count.value) == 4


def test_watchpoint_dump_writes_bundle(tmp_path):
    sim = _counter_sim()
    sim.flight_recorder(signals=["count"], depth=8)
    out = tmp_path / "wp_out"
    sim.watch(value_is("count", 5), name="five", dump=str(out),
              once=True)
    sim.model.en.value = 1
    sim.run(10)
    bundles = [f for f in os.listdir(out) if f.endswith(".json")]
    assert len(bundles) == 1
    manifest = load_bundle(out / bundles[0])
    assert manifest["reason"] == "watchpoint:five"
    assert manifest["watchpoint"]["name"] == "five"
    assert manifest["windows"][0]["window"].values_at(7) == (5,)


def test_watch_rejects_non_condition():
    sim = _counter_sim()
    with pytest.raises(TypeError, match="Condition"):
        sim.watch("count")


# -- substrate equivalence ----------------------------------------------------

CACHE_SIGNALS = ["cache.state", "cache.req_addr", "cache.miss_count"]
N_EQUIV_TXNS = 120


def _cache_requests(seed, n=N_EQUIV_TXNS):
    rng = RNG(seed).fork("observe-equiv")
    strat = mem_request_strategy(addr_words=32)
    return {"req": [strat.sample(rng) for _ in range(n)]}


def _armed_cache_duts(substrates, depth=64):
    duts, recs, wps = [], [], []
    for name, kwargs in substrates:
        dut = make_cache_dut(name, "rtl", **kwargs)
        rec = dut.sim.flight_recorder(signals=CACHE_SIGNALS,
                                      depth=depth)
        wp = dut.sim.watch(
            rose("cache.miss_count") | stable_for("cache.state", 24),
            name="miss-or-stuck")
        duts.append(dut)
        recs.append(rec)
        wps.append(wp)
    return duts, recs, wps


@needs_cc
def test_cache_windows_bit_identical_across_substrates(tmp_path):
    """Recorders hold bit-identical windows and watchpoints fire at
    identical cycles under event, static(+kernel), and SimJIT."""
    substrates = [("event", {"sched": "event"}),
                  ("static", {"sched": "static"}),
                  ("jit", {"jit": True})]
    duts, recs, wps = _armed_cache_duts(substrates)
    harness = CoSimHarness(duts, compare="cycle_exact")
    res = harness.run(_cache_requests(7), max_cycles=20_000)
    assert res.ntransactions("resp") == N_EQUIV_TXNS

    dicts = [rec.window().to_dict() for rec in recs]
    assert dicts[0] == dicts[1] == dicts[2]
    assert dicts[0]["changes"], "window should not be empty"

    vcds = []
    for name, rec in zip(("event", "static", "jit"), recs):
        path = tmp_path / f"{name}.vcd"
        rec.window().to_vcd(path)
        vcds.append(path.read_bytes())
    assert vcds[0] == vcds[1] == vcds[2]

    fire_cycles = [wp.fire_cycles() for wp in wps]
    assert fire_cycles[0] == fire_cycles[1] == fire_cycles[2]
    assert wps[0].fired


@needs_cc
def test_mesh_windows_bit_identical_across_substrates():
    mesh_signals = ["routers[0].grant_val[0]", "routers[0].hold_val[0]",
                    "routers[2].priority[0]"]
    duts, recs, wps = [], [], []
    for name, kwargs in [("event", {"sched": "event"}),
                         ("static", {"sched": "static"}),
                         ("jit", {"jit": True})]:
        dut = make_mesh_dut(name, "rtl", nrouters=4, **kwargs)
        recs.append(dut.sim.flight_recorder(signals=mesh_signals,
                                            depth=48))
        wps.append(dut.sim.watch(
            rose("routers[0].grant_val[0]"), name="grant0"))
        duts.append(dut)

    from repro.verif.strategies import net_message_strategy
    rng = RNG(11)
    msg_type = duts[0].model.msg_type
    stimulus = {}
    for src in range(4):
        port_rng = rng.fork(f"port{src}")
        strat = net_message_strategy(msg_type, src, 4)
        stimulus[f"in{src}"] = [strat.sample(port_rng)
                                for _ in range(40)]
    harness = CoSimHarness(duts, compare="cycle_exact")
    harness.run(stimulus, max_cycles=20_000)

    dicts = [rec.window().to_dict() for rec in recs]
    assert dicts[0] == dicts[1] == dicts[2]
    fires = [wp.fire_cycles() for wp in wps]
    assert fires[0] == fires[1] == fires[2]
    assert fires[0], "grant watchpoint should fire under traffic"


def test_static_kernel_and_interpreted_static_agree():
    """The interpreted static schedule (kernel refused via
    collect_stats) and the compiled kernel sample identically."""
    sims = [_counter_sim(sched="static"),
            _counter_sim(sched="static", collect_stats=True)]
    assert sims[0].sched_info()["kernel"] is True
    assert sims[1].sched_info()["kernel"] is False
    recs = [s.flight_recorder(signals=["count", "par"], depth=16)
            for s in sims]
    for s in sims:
        s.model.en.value = 1
        s.run(12)
    assert recs[0].window().to_dict() == recs[1].window().to_dict()


# -- post-mortem forensics ----------------------------------------------------


def _divergent_cache_pair(dut_kwargs, out_dir):
    """Reference (fast memory) vs DUT (slow memory): deterministic
    cycle_exact divergence at the first response."""
    ref = make_cache_dut("ref", "rtl", sched="event", mem_latency=1)
    dut = make_cache_dut("dut", "rtl", mem_latency=3, **dut_kwargs)
    dut.sim.flight_recorder(signals=CACHE_SIGNALS, depth=32,
                            autodump=str(out_dir))
    return CoSimHarness([ref, dut], compare="cycle_exact")


@pytest.mark.parametrize("dut_kwargs", [
    {"sched": "event"},
    {"sched": "static"},
    pytest.param({"jit": True}, marks=needs_cc),
])
def test_cosim_divergence_produces_bundle(tmp_path, dut_kwargs):
    out = tmp_path / "div"
    harness = _divergent_cache_pair(dut_kwargs, out)
    with pytest.raises(CoSimMismatch) as excinfo:
        harness.run(_cache_requests(3, n=20), max_cycles=10_000)
    exc = excinfo.value
    assert "dut" in exc.bundles
    manifest = load_bundle(exc.bundles["dut"])
    assert manifest["schema"] == "repro-observe-v1"
    assert manifest["reason"] == "cosim-divergence"
    window = manifest["windows"][0]["window"]
    assert window.names == CACHE_SIGNALS
    assert window.ncycles == min(32, manifest["cycle"])
    assert window.cycles()[-1] == manifest["cycle"]
    vcd = os.path.join(os.path.dirname(exc.bundles["dut"]),
                       manifest["windows"][0]["vcd"])
    assert os.path.exists(vcd)


@needs_cc
def test_divergence_bundles_bit_identical_across_substrates(tmp_path):
    """The exported divergence window of the same (deterministic) DUT
    is byte-identical whether it ran event, static, or SimJIT."""
    payloads = {}
    for sub, kwargs in [("event", {"sched": "event"}),
                        ("static", {"sched": "static"}),
                        ("jit", {"jit": True})]:
        out = tmp_path / sub
        harness = _divergent_cache_pair(kwargs, out)
        with pytest.raises(CoSimMismatch) as excinfo:
            harness.run(_cache_requests(3, n=20), max_cycles=10_000)
        manifest = load_bundle(excinfo.value.bundles["dut"])
        vcd_path = os.path.join(
            os.path.dirname(excinfo.value.bundles["dut"]),
            manifest["windows"][0]["vcd"])
        payloads[sub] = (manifest["windows"][0]["window"].to_dict(),
                         open(vcd_path, "rb").read())
    assert payloads["event"] == payloads["static"] == payloads["jit"]


def test_watchdog_trip_produces_bundle(tmp_path):
    out = tmp_path / "wd"
    sim = _counter_sim()
    sim.flight_recorder(signals=["count"], depth=16)
    sim.model.en.value = 1
    wd = Watchdog(sim, max_cycles=40, check_every=8,
                  bundle_dir=str(out))
    with pytest.raises(WatchdogTimeout) as excinfo:
        wd.run(1000)
    diag = excinfo.value.diagnostics
    assert "observe_bundle" in diag
    manifest = load_bundle(diag["observe_bundle"])
    assert manifest["schema"] == "repro-observe-v1"
    assert manifest["reason"] == "watchdog:cycle-budget"
    window = manifest["windows"][0]["window"]
    # The window replays the last depth cycles up to the trip point.
    assert window.ncycles == 16
    assert window.cycles()[-1] == sim.ncycles


class _Crasher(Model):
    def __init__(s):
        s.out = OutPort(4)
        s.count = Wire(4)

        @s.tick_rtl
        def tick():
            if s.reset:
                s.count.next = 0
            else:
                s.count.next = (s.count + 1) & 0xF

        @s.combinational
        def comb():
            s.out.value = s.count

        @s.tick_fl
        def bomb():
            if s.count.value.uint() == 9:
                raise RuntimeError("injected fault at count 9")


def test_unhandled_cycle_exception_produces_bundle(tmp_path):
    out = tmp_path / "crash"
    sim = SimulationTool(_Crasher().elaborate())
    sim.flight_recorder(signals=["count"], depth=8,
                        autodump=str(out))
    sim.reset()
    with pytest.raises(RuntimeError, match="injected fault") as excinfo:
        sim.run(100)
    path = getattr(excinfo.value, "_observe_bundle", None)
    assert path is not None
    manifest = load_bundle(path)
    assert manifest["reason"] == "crash:cycle"
    assert "injected fault" in manifest["error"]
    # Only one bundle despite the exception crossing run()'s loop.
    assert len([f for f in os.listdir(out)
                if f.endswith(".json")]) == 1


def test_no_autodump_no_bundle(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_OBSERVE_DIR", raising=False)
    monkeypatch.chdir(tmp_path)
    sim = SimulationTool(_Crasher().elaborate())
    sim.flight_recorder(signals=["count"], depth=8)   # no autodump
    sim.reset()
    with pytest.raises(RuntimeError, match="injected fault"):
        sim.run(100)
    assert not os.path.exists("observe_out")


def test_halting_watchpoint_does_not_double_dump(tmp_path):
    out = tmp_path / "halt"
    sim = _counter_sim()
    sim.flight_recorder(signals=["count"], depth=8, autodump=str(out))
    sim.watch(value_is("count", 4), name="stop", halt=True,
              dump=str(out))
    sim.model.en.value = 1
    with pytest.raises(WatchpointHit):
        sim.run(20)
    # One bundle from dump=, none from the crash path.
    bundles = [f for f in os.listdir(out) if f.endswith(".json")]
    assert len(bundles) == 1
    assert load_bundle(out / bundles[0])["reason"] == "watchpoint:stop"


# -- dump CLI -----------------------------------------------------------------


def _make_bundle(tmp_path):
    out = tmp_path / "cli"
    sim = _counter_sim()
    sim.flight_recorder(signals=["count", "par"], depth=16)
    sim.model.en.value = 1
    sim.run(8)
    sim.watch(rose("par"), name="parwatch")
    sim.run(2)
    from repro.observe import export_bundle
    return export_bundle(sim, str(out), reason="manual", tag="demo")


def test_dump_render_and_cli(tmp_path, capsys):
    path = _make_bundle(tmp_path)
    text = render(load_bundle(path))
    assert "manual at cycle" in text
    assert "count" in text and "par" in text
    assert "watchpoint 'parwatch'" in text
    # 1-bit lane uses waveform glyphs; multibit lane shows hex.
    assert any(g in text for g in ("/", "\\", "~", "_"))

    assert dump_main([str(path), "--last-n", "5"]) == 0
    out = capsys.readouterr().out
    assert "repro-observe bundle" in out
    assert dump_main([str(tmp_path / "missing.json")]) == 2


def test_load_bundle_rejects_wrong_schema(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "nope", "windows": []}))
    with pytest.raises(ValueError, match="schema"):
        load_bundle(bad)


# -- telemetry integration ----------------------------------------------------


def test_telemetry_report_includes_observe_section():
    sim = _counter_sim()
    sim.flight_recorder(signals=["count"], depth=8)
    sim.watch(rose("par"), name="p")
    sim.model.en.value = 1
    sim.run(4)
    data = sim.telemetry.report().to_dict()
    obs = data["observe"]
    assert obs["recorders"][0]["signals"] == ["count"]
    assert obs["recorders"][0]["depth"] == 8
    assert obs["watchpoints"][0]["name"] == "p"
    assert obs["watchpoints"][0]["n_fires"] == 2  # par rose at 3 and 5
    assert "recorder: 1 signals" in sim.telemetry.report().summary()


# -- line_trace_sink satellite ------------------------------------------------


class _Traced(Model):
    def __init__(s):
        s.out = OutPort(4)
        s.count = Wire(4)

        @s.tick_rtl
        def tick():
            s.count.next = 0 if s.reset else (s.count + 1) & 0xF

        @s.combinational
        def comb():
            s.out.value = s.count

    def line_trace(s):
        return f"count={int(s.count.value)}"


def test_line_trace_sink_file(tmp_path):
    path = tmp_path / "trace.log"
    with SimulationTool(_Traced().elaborate(),
                        line_trace_sink=str(path)) as sim:
        sim.reset()
        sim.run(3)
    lines = path.read_text().splitlines()
    assert len(lines) == 5                        # 2 reset + 3 run
    assert lines[-1].endswith("count=3")
    assert lines[0].split(":")[0].strip() == "1"


def test_line_trace_sink_callable():
    seen = []
    sim = SimulationTool(_Traced().elaborate(),
                         line_trace_sink=seen.append)
    sim.reset()
    sim.run(2)
    assert len(seen) == 4
    assert seen[-1].endswith("count=2")


def test_line_trace_sink_keeps_stdout_silent(tmp_path, capsys):
    sim = SimulationTool(_Traced().elaborate(),
                         line_trace_sink=str(tmp_path / "t.log"))
    sim.reset()
    sim.cycle()
    sim.close()
    assert capsys.readouterr().out == ""


# -- doctests / package smoke -------------------------------------------------


def test_observe_package_doctest_smoke():
    import doctest
    import repro.observe.recorder as rmod
    import repro.observe.watchpoints as wmod
    for mod in (rmod, wmod):
        result = doctest.testmod(mod)
        assert result.failed == 0


# -- manifest error contract + trace attachment -------------------------------


def test_read_manifest_missing_file(tmp_path):
    from repro.observe.forensics import read_manifest
    with pytest.raises(FileNotFoundError):
        read_manifest(str(tmp_path / "nope.json"))


def test_read_manifest_truncated_json(tmp_path):
    """A bundle cut off mid-write (crashed worker, full disk) must
    surface as ValueError, not a raw JSONDecodeError surprise — the
    fleet aggregator catches ValueError when embedding manifests."""
    from repro.observe.forensics import read_manifest
    path = _make_bundle(tmp_path)
    with open(path) as handle:
        text = handle.read()
    truncated = tmp_path / "truncated.json"
    truncated.write_text(text[: len(text) // 2])
    with pytest.raises(ValueError):
        read_manifest(str(truncated))


def test_read_manifest_wrong_schema(tmp_path):
    from repro.observe.forensics import read_manifest
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "repro-observe-v999"}))
    with pytest.raises(ValueError, match="schema"):
        read_manifest(str(bad))


def test_read_manifest_non_object(tmp_path):
    from repro.observe.forensics import read_manifest
    bad = tmp_path / "list.json"
    bad.write_text("[1, 2, 3]\n")
    with pytest.raises(ValueError, match="object"):
        read_manifest(str(bad))


def test_attach_trace_roundtrip(tmp_path):
    """attach_trace writes a sibling Chrome trace, references it from
    the manifest, and the result revalidates — the path the fleet
    uses to pin a host timeline onto a mismatch bundle."""
    from repro.observe.forensics import attach_trace, read_manifest
    from repro.telemetry import traceevent
    from repro.telemetry.tracing import Tracer

    path = _make_bundle(tmp_path)
    tracer = Tracer()
    with tracer.span("fleet.task", task="verif/demo"):
        with tracer.span("sim.run", ncycles=10):
            pass
    trace_path = attach_trace(path, tracer.events, name="verif/demo")

    manifest = read_manifest(path)
    assert manifest["trace"] == os.path.basename(trace_path)
    assert os.path.dirname(trace_path) == os.path.dirname(path)
    with open(trace_path) as handle:
        trace = json.load(handle)
    events = traceevent.validate(trace)
    names = {e["name"] for e in events if e["ph"] == "X"}
    assert names == {"fleet.task", "sim.run"}
    assert any(e["ph"] == "M" and e["args"]["name"] == "verif/demo"
               for e in events)
