"""Differential sweeps for the accelerator-augmented compute tile.

The tile is the paper's Figure 5a composition — processor + L1 caches
+ accelerator behind an arbiter — and the hardest co-simulation target:
every store observed at the processor's dmem port has crossed the
arbiter and the data cache.  Substrate equivalence (event / static /
SimJIT of the all-RTL tile) must still be bit-and-cycle exact; tiles
composed at different ⟨P, C, A⟩ abstraction levels must agree
cycle-tolerantly (the Figure 13 interchangeability claim).
"""

from repro.proc import assemble
from repro.verif import RNG, CoSimHarness
from repro.verif.duts import make_tile_dut, random_minrisc_program

_MIX = {"store_frac": 0.45, "load_frac": 0.10, "branch_frac": 0.05}
N_TXNS = 1000


def _program(seed, length=500):
    rng = RNG(seed).fork("tile-prog")
    return assemble(random_minrisc_program(rng, length=length, **_MIX))


def test_tile_substrates_cycle_exact():
    """All-RTL tile: event == static == SimJIT over >= 1000 stores."""
    total = 0
    seed = 0
    while total < N_TXNS:
        words = _program(seed)
        harness = CoSimHarness(
            [make_tile_dut("event", ("rtl",) * 3, words, sched="event"),
             make_tile_dut("static", ("rtl",) * 3, words, sched="static"),
             make_tile_dut("jit", ("rtl",) * 3, words, jit=True)],
            compare="cycle_exact")
        res = harness.run({}, max_cycles=300_000)
        assert len(set(res.ncycles.values())) == 1
        total += res.ntransactions("stores")
        seed += 1
    assert total >= N_TXNS


def test_tile_levels_cycle_tolerant():
    """Uniform-level tiles (all-FL vs all-CL vs all-RTL) retire the
    same store stream and final memory image."""
    words = _program(50, length=300)
    harness = CoSimHarness(
        [make_tile_dut(lvl, (lvl,) * 3, words)
         for lvl in ("fl", "cl", "rtl")],
        compare="cycle_tolerant")
    res = harness.run({}, max_cycles=300_000)
    assert res.ntransactions("stores") > 0
    assert len(set(res.final_states.values())) == 1


def test_tile_mixed_levels_cycle_tolerant():
    """Mixed ⟨P, C, A⟩ configurations from the Figure 13 design space
    are interchangeable with the all-FL tile."""
    words = _program(60, length=300)
    harness = CoSimHarness(
        [make_tile_dut("fl", ("fl", "fl", "fl"), words),
         make_tile_dut("mixed1", ("rtl", "cl", "fl"), words),
         make_tile_dut("mixed2", ("cl", "rtl", "fl"), words)],
        compare="cycle_tolerant")
    res = harness.run({}, max_cycles=300_000)
    assert res.ntransactions("stores") > 0
    assert len(set(res.final_states.values())) == 1
