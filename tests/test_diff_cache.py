"""Differential sweeps for the cache subsystem.

Two orthogonal properties of the paper's methodology, checked by
constrained-random co-simulation (:mod:`repro.verif`):

- **refinement** — the FL, CL, and RTL caches are interchangeable
  behind the same latency-insensitive interface: identical response
  streams and identical final backing-memory images, timing free
  (``compare="cycle_tolerant"``);
- **substrate equivalence** — one RTL cache simulated event-driven,
  static-scheduled, and SimJIT-compiled is bit-and-cycle identical
  (``compare="cycle_exact"``).

The last test deliberately injects an RTL response-path bug, proves
the harness catches it, shrinks the failure to a handful of
transactions, and emits (and re-executes) a standalone pytest repro.
"""

import pytest

from repro.core import InValRdyBundle, Model, OutValRdyBundle, Wire
from repro.mem import CacheRTL, MemMsg, TestMemory
from repro.verif import (
    RNG,
    CoSimHarness,
    CoSimMismatch,
    DutAdapter,
    backpressure_pattern,
    emit_repro,
    mem_request_strategy,
    presence_pattern,
    shrink_cosim_failure,
)
from repro.verif.duts import CACHE_WINDOW_WORDS, make_cache_dut

N_TXNS = 1000


def _requests(seed, n=N_TXNS):
    rng = RNG(seed).fork("cache-reqs")
    strat = mem_request_strategy(addr_words=CACHE_WINDOW_WORDS)
    return {"req": [strat.sample(rng) for _ in range(n)]}


def test_cache_levels_cycle_tolerant():
    """FL / CL / RTL caches agree on 1000 random requests under random
    backpressure and idle gaps (cross-abstraction refinement)."""
    harness = CoSimHarness(
        [make_cache_dut(lvl, lvl) for lvl in ("fl", "cl", "rtl")],
        compare="cycle_tolerant")
    res = harness.run(
        _requests(100),
        backpressure=backpressure_pattern("random", p=0.75, seed=1),
        presence=presence_pattern("random", p=0.85, seed=1))
    assert res.ntransactions("resp") == N_TXNS
    assert len(set(res.final_states.values())) == 1


def test_cache_substrates_cycle_exact():
    """The same RTL cache on the event-driven, static-scheduled, and
    SimJIT backends is bit-and-cycle identical over 1000 requests."""
    harness = CoSimHarness(
        [make_cache_dut("event", "rtl", sched="event"),
         make_cache_dut("static", "rtl", sched="static"),
         make_cache_dut("jit", "rtl", jit=True)],
        compare="cycle_exact")
    res = harness.run(
        _requests(200),
        backpressure=backpressure_pattern("bursty", burst=3),
        presence=presence_pattern("random", p=0.8, seed=2))
    assert res.ntransactions("resp") == N_TXNS
    assert len(set(res.ncycles.values())) == 1


@pytest.mark.parametrize("assoc,mem_latency", [(2, 1), (1, 4)])
def test_cache_config_substrates_cycle_exact(assoc, mem_latency):
    """Substrate equivalence holds across cache configurations too."""
    harness = CoSimHarness(
        [make_cache_dut("event", "rtl", sched="event", assoc=assoc,
                        mem_latency=mem_latency),
         make_cache_dut("static", "rtl", sched="static", assoc=assoc,
                        mem_latency=mem_latency)],
        compare="cycle_exact")
    res = harness.run(
        _requests(300 + assoc, n=250),
        backpressure=backpressure_pattern("random", p=0.7, seed=3))
    assert res.ntransactions("resp") == 250


# -- injected-bug detection + shrinking ---------------------------------------


class _BitflipCacheHarness(Model):
    """CacheRTL composition with a fault injector on the response path:
    the data of the ``nth`` response comes back with bit 0 flipped — a
    stand-in for a real RTL data-path bug that only a differential
    reference catches (both faulty and reference runs are 'plausible'
    on their own)."""

    def __init__(s, nth, nlines=16, assoc=1, mem_latency=2):
        mem_msg = MemMsg()
        s.nth = nth
        s.cache = CacheRTL(mem_msg, mem_msg, nlines=nlines, assoc=assoc)
        s.mem = TestMemory(nports=1, latency=mem_latency, size=1 << 16)
        s.connect(s.cache.mem_ifc.req, s.mem.ports[0].req)
        s.connect(s.cache.mem_ifc.resp, s.mem.ports[0].resp)
        s.req = InValRdyBundle(mem_msg.req)
        s.resp = OutValRdyBundle(mem_msg.resp)
        s.connect(s.req, s.cache.cpu_ifc.req)
        s.count = Wire(16)

        @s.combinational
        def corrupt():
            s.resp.val.value = s.cache.cpu_ifc.resp.val.uint()
            s.cache.cpu_ifc.resp.rdy.value = s.resp.rdy.uint()
            msg = s.cache.cpu_ifc.resp.msg.uint()
            if s.count.uint() == s.nth - 1:
                msg = msg ^ 1
            s.resp.msg.value = msg

        @s.tick_rtl
        def count_responses():
            if s.reset:
                s.count.next = 0
            elif s.resp.val.uint() and s.resp.rdy.uint():
                s.count.next = s.count.uint() + 1

    def line_trace(s):
        return (f"#{int(s.count)} {s.req.to_str()}>{s.resp.to_str()}")


def _final_mem_window(m):
    return tuple(m.mem.read_word(4 * i) for i in range(CACHE_WINDOW_WORDS))


def _make_buggy_pair(nth=8):
    """Reference RTL cache vs the same cache with the bit-flip bug."""
    buggy = _BitflipCacheHarness(nth).elaborate()
    return CoSimHarness(
        [make_cache_dut("good", "rtl"),
         DutAdapter("buggy", buggy,
                    drives={"req": buggy.req},
                    captures={"resp": buggy.resp},
                    final_state=_final_mem_window)],
        compare="cycle_tolerant")


# Source of the ``make_cosim()`` factory baked into the emitted repro
# file, so the repro is runnable standalone.
_BUILD_SRC = """\
from tests.test_diff_cache import _make_buggy_pair


def make_cosim():
    return _make_buggy_pair()
"""


def test_injected_bug_caught_and_shrunk(tmp_path):
    """A deliberately injected RTL bug (a) trips the differential
    comparison, (b) shrinks to <= 10 transactions, and (c) yields a
    standalone pytest repro that still fails."""
    stimulus = _requests(7, n=40)
    run_kwargs = {"max_cycles": 20_000}

    with pytest.raises(CoSimMismatch) as excinfo:
        _make_buggy_pair().run(stimulus, **run_kwargs)
    assert excinfo.value.channel == "resp"

    shrunk, mismatch = shrink_cosim_failure(
        _make_buggy_pair, stimulus, run_kwargs, max_runs=200)
    nevents = sum(len(v) for v in shrunk.values())
    assert nevents <= 10
    assert mismatch.channel == "resp"
    assert mismatch.dut == "buggy"

    repro = tmp_path / "repro_cache_bitflip.py"
    emit_repro(repro, _BUILD_SRC, shrunk, run_kwargs,
               note="RTL cache response-path bit-flip (injected).",
               mismatch=mismatch)
    namespace = {}
    exec(compile(repro.read_text(), str(repro), "exec"), namespace)
    with pytest.raises(CoSimMismatch):
        namespace["test_repro"]()


def test_injected_bug_invisible_without_reference():
    """Sanity check on the injection itself: the buggy cache passes its
    own protocol checks — only the differential reference exposes it."""
    buggy = _BitflipCacheHarness(4).elaborate()
    other = _BitflipCacheHarness(4).elaborate()
    harness = CoSimHarness(
        [DutAdapter("a", buggy, drives={"req": buggy.req},
                    captures={"resp": buggy.resp}),
         DutAdapter("b", other, drives={"req": other.req},
                    captures={"resp": other.resp})],
        compare="cycle_exact")
    res = harness.run(_requests(9, n=30))
    assert res.ntransactions("resp") == 30
