"""Unified telemetry subsystem tests.

Covers the four pillars (counters, transaction tracing, self-profiling,
export) plus the observability satellites: counter totals must be
bit-identical across event mode, static mode, the compiled mega-cycle
kernel, and SimJIT specialization; Chrome-trace JSON must satisfy the
trace-event schema; the VCD writer must match a golden file and be
exception-safe; and the telemetry module doctests must pass.
"""

import doctest
import json

import pytest

from repro import (
    InPort,
    Model,
    OutPort,
    SimulationTool,
    Wire,
    set_telemetry_enabled,
    telemetry_enabled,
)
from repro.core.simjit import SimJITCL, SimJITRTL
from repro.mem import CacheCL, CacheRTL, MemMsg, MemReqMsg, TestMemory
from repro.net import MeshNetworkStructural, RouterCL, RouterRTL
from repro.net.traffic import NetworkTrafficHarness
from repro.telemetry import (
    Counter,
    Histogram,
    NullCounter,
    TelemetryReport,
    TxTracer,
)
from repro.tools import VCDWriter, activity_report


# -- helpers ------------------------------------------------------------------------


def _mesh_sim(sched, collect_stats=False):
    net = MeshNetworkStructural(RouterRTL, 4, 256, 32, 2).elaborate()
    sim = SimulationTool(net, sched=sched, collect_stats=collect_stats)
    return net, sim


def _run_mesh_traffic(sched, collect_stats=False):
    net, sim = _mesh_sim(sched, collect_stats)
    harness = NetworkTrafficHarness(net, sim=sim, seed=7)
    harness.run_uniform_random(0.25, 120)
    return sim


class _CacheHarness(Model):
    def __init__(s, cache):
        s.cache = cache
        s.mem = TestMemory(nports=1, latency=2, size=1 << 16)
        s.connect(s.cache.mem_ifc.req, s.mem.ports[0].req)
        s.connect(s.cache.mem_ifc.resp, s.mem.ports[0].resp)


def _drive_cache(sim, port, reqs, max_cycles=500):
    """Blocking request/response loop (same protocol as test_mem)."""
    for req in reqs:
        port.req_msg.value = req
        port.req_val.value = 1
        port.resp_rdy.value = 1
        for _ in range(max_cycles):
            accepted = int(port.req_val) and int(port.req_rdy)
            sim.cycle()
            if accepted:
                break
        else:
            raise AssertionError("request never accepted")
        port.req_val.value = 0
        for _ in range(max_cycles):
            if int(port.resp_val) and int(port.resp_rdy):
                sim.cycle()
                port.resp_rdy.value = 0
                break
            sim.cycle()
        else:
            raise AssertionError("no response")


_CACHE_REQS = (
    [MemReqMsg.mk_wr(a * 4, a + 1) for a in range(8)]
    + [MemReqMsg.mk_rd(a * 4) for a in range(16)]
    # Conflict misses: stride-64 reads all land in the same set of a
    # 4-line cache, forcing evictions of valid lines.
    + [MemReqMsg.mk_rd(a * 64) for a in range(8)]
    + [MemReqMsg.mk_rd(a * 4) for a in range(8)]
)


def _run_cache(cache_cls, sched, **kwargs):
    harness = _CacheHarness(
        cache_cls(MemMsg(), MemMsg(), **kwargs)).elaborate()
    sim = SimulationTool(harness, sched=sched)
    sim.reset()
    _drive_cache(sim, harness.cache.cpu_ifc, _CACHE_REQS)
    return harness, sim


# -- counter basics ------------------------------------------------------------------


def test_counter_kinds_and_values():
    class _M(Model):
        def __init__(s):
            s.w = Wire(8)
            s.n = 3
            s.lst = [10, 20]
            s.c_py = s.counter("py")
            s.c_sig = s.counter("sig", sig=s.w)
            s.c_state = s.counter("st", state=("n",))
            s.c_elem = s.counter("el", state=("lst", 1))

    m = _M()
    m.c_py.incr(5)
    assert m.c_py.value == 5 and m.c_py.kind == "python"
    assert m.c_sig.value == 0 and m.c_sig.kind == "signal"
    assert m.c_state.value == 3 and m.c_state.kind == "state"
    assert m.c_elem.value == 20
    with pytest.raises(TypeError, match="backed"):
        m.c_sig.incr()
    with pytest.raises(ValueError, match="duplicate"):
        m.counter("py")


def test_counters_collected_hierarchically():
    _, sim = _mesh_sim("static")
    counters = sim.telemetry.counters()
    assert "top.routers[0].flits_out0" in counters
    # 4 routers x 5 ports x 2 counters
    assert len(counters) == 4 * 5 * 2
    subtrees = sim.telemetry.subtree_totals()
    assert "top.routers[3]" in subtrees
    assert set(subtrees["top.routers[3]"]) == {
        f"{k}{o}" for k in ("flits_out", "stalls_out") for o in range(5)
    }


def test_histogram_percentiles():
    h = Histogram("lat")
    for v, n in [(1, 90), (4, 9), (40, 1)]:
        h.observe(v, n)
    assert h.count == 100 and h.max == 40 and h.min == 1
    assert h.percentile(0.5) == 1
    assert h.percentile(0.95) == 4
    assert h.percentile(1.0) == 40


# -- the zero-overhead-when-disabled contract ----------------------------------------


def test_disabled_telemetry_registers_nothing():
    prev = set_telemetry_enabled(False)
    try:
        assert not telemetry_enabled()
        net_off = MeshNetworkStructural(RouterRTL, 4, 256, 32, 2)
        net_off.elaborate()
        assert net_off._all_counters == {}
        # Telemetry-only tick blocks are not declared at all.
        nticks_off = sum(len(m.get_tick_blocks())
                         for m in net_off._all_models)
    finally:
        set_telemetry_enabled(prev)
    net_on = MeshNetworkStructural(RouterRTL, 4, 256, 32, 2).elaborate()
    nticks_on = sum(len(m.get_tick_blocks())
                    for m in net_on._all_models)
    assert nticks_on == nticks_off + 4   # one telemetry tick per router
    assert len(net_on._all_counters) == 40


def test_disabled_declarations_return_null_counter():
    prev = set_telemetry_enabled(False)
    try:
        class _M(Model):
            def __init__(s):
                s.w = Wire(4)
                s.c = s.counter("c")
                s.h = s.histogram("h")
                s.cs = s.counter("cs", sig=s.w)

        m = _M()
        assert isinstance(m.c, NullCounter)
        m.c.incr()
        m.h.observe(9)
        assert m.c.value == 0 and m.h.count == 0
        # Backed declarations still read their storage but register
        # nothing.
        assert isinstance(m.cs, Counter)
        assert m._telemetry_counters == {}
    finally:
        set_telemetry_enabled(prev)


# -- mode equivalence: counters must not depend on the schedule ----------------------


def test_mesh_counters_identical_event_static_kernel():
    sims = {
        "event": _run_mesh_traffic("event"),
        "static": _run_mesh_traffic("static"),
        "stats": _run_mesh_traffic("static", collect_stats=True),
    }
    # The static run must actually exercise the compiled kernel, and
    # the stats run must exercise the interpreted path.
    assert sims["static"]._kernel is not None
    assert sims["stats"]._kernel is None
    counts = {k: sim.telemetry.counters() for k, sim in sims.items()}
    assert counts["event"] == counts["static"] == counts["stats"]
    assert sum(counts["event"].values()) > 0


@pytest.mark.parametrize("cache_cls,kwargs", [
    (CacheCL, {"nlines": 4}),
    (CacheRTL, {"nlines": 4}),
    (CacheCL, {"nlines": 4, "assoc": 2}),
])
def test_cache_counters_identical_event_static(cache_cls, kwargs):
    results = {}
    for sched in ("event", "static"):
        harness, sim = _run_cache(cache_cls, sched, **kwargs)
        results[sched] = sim.telemetry.counters()
        # Sanity: the workload really hits/misses/evicts.
        assert results[sched]["top.cache.accesses"] == len(_CACHE_REQS)
        assert results[sched]["top.cache.misses"] > 0
        assert results[sched]["top.cache.evictions"] > 0
        assert results[sched]["top.cache.writebacks"] == 8
    assert results["event"] == results["static"]


def test_counters_advance_inside_kernel_run():
    """sim.run()'s fast path executes the compiled kernel; wire-backed
    counter increments are compiled into it."""

    class _Ctr(Model):
        def __init__(s):
            s.en = InPort(1)
            s.out = OutPort(8)
            s.ticks = Wire(32)
            s.counter("ticks", sig=s.ticks)

            @s.tick_rtl
            def logic():
                if s.reset:
                    s.ticks.next = 0
                elif s.en:
                    s.ticks.next = s.ticks + 1
                s.out.next = s.ticks.value

    m = _Ctr().elaborate()
    sim = SimulationTool(m, sched="static")
    assert sim._kernel is not None
    sim.reset()
    m.en.value = 1
    sim.run(25)
    assert sim.telemetry.counters() == {"top.ticks": 25}


# -- SimJIT survival -----------------------------------------------------------------


def _drive_router(router, ncycles=20):
    sim = SimulationTool(router.elaborate()
                         if not router.is_elaborated() else router)
    sim.reset()
    for o in range(5):
        router.out[o].rdy.value = 1
    dest_lo, _ = router.msg_type.field_slice("dest")
    router.in_[0].msg.value = 1 << dest_lo    # dest=1 -> east
    router.in_[0].val.value = 1
    for _ in range(ncycles):
        sim.cycle()
    return {name: ctr.value
            for name, ctr in router._telemetry_counters.items()}


def test_counters_survive_simjit_cl():
    plain = _drive_router(RouterCL(0, 4, 64, 16, 2))
    jit = SimJITCL(RouterCL(0, 4, 64, 16, 2)).specialize()
    jitted = _drive_router(jit.elaborate())
    assert plain == jitted
    assert jitted["flits_out2"] > 0


def test_counters_survive_simjit_rtl():
    plain = _drive_router(RouterRTL(0, 4, 64, 16, 2).elaborate())
    jit = SimJITRTL(RouterRTL(0, 4, 64, 16, 2).elaborate()).specialize()
    jitted = _drive_router(jit.elaborate())
    assert plain == jitted
    assert jitted["flits_out2"] > 0


# -- transaction tracing -------------------------------------------------------------


def _traced_cache_run():
    harness = _CacheHarness(
        CacheCL(MemMsg(), MemMsg(), nlines=4)).elaborate()
    sim = SimulationTool(harness)
    tracer = sim.telemetry.trace()
    req_tap = tracer.tap(harness.cache.cpu_ifc.req, "cpu_req")
    resp_tap = tracer.tap(harness.cache.cpu_ifc.resp, "cpu_resp")
    tracer.pair("cpu_req", "cpu_resp", name="cpu")
    sim.reset()
    tracer.reset_monitors()
    _drive_cache(sim, harness.cache.cpu_ifc, _CACHE_REQS)
    return sim, tracer, req_tap, resp_tap


def test_tracer_counts_transfers_and_latency():
    sim, tracer, req_tap, resp_tap = _traced_cache_run()
    assert len(req_tap.transfers) == len(_CACHE_REQS)
    assert len(resp_tap.transfers) == len(_CACHE_REQS)
    assert not req_tap.violations and not resp_tap.violations
    lat = tracer.latency_histogram("cpu")
    assert lat.count == len(_CACHE_REQS)
    assert lat.min >= 1                    # every response takes a cycle
    assert lat.max >= 4                    # refills are multi-cycle
    occ = tracer.occupancy_histogram("cpu")
    assert occ.max >= 1                    # blocking cache: <=1 in flight
    summary = tracer.summary()
    assert summary["taps"]["cpu_req"]["transfers"] == len(_CACHE_REQS)
    assert summary["pairs"]["cpu"]["matched"] == len(_CACHE_REQS)


def test_chrome_trace_schema(tmp_path):
    sim, tracer, req_tap, _ = _traced_cache_run()
    path = tmp_path / "cache.trace.json"
    tracer.write_chrome_trace(path)
    with open(path) as handle:
        trace = json.load(handle)

    assert set(trace) == {"traceEvents", "displayTimeUnit", "metadata"}
    events = trace["traceEvents"]
    by_phase = {}
    for ev in events:
        assert {"ph", "pid"} <= set(ev)
        by_phase.setdefault(ev["ph"], []).append(ev)
    # Process metadata + one thread_name per tap.
    assert len(by_phase["M"]) == 1 + len(tracer.taps)
    # One complete event per transfer, with the required fields.
    xfers = by_phase["X"]
    assert len(xfers) == sum(len(t.transfers) for t in tracer.taps)
    for ev in xfers:
        assert isinstance(ev["ts"], float) and ev["dur"] == 1.0
        assert ev["args"]["msg"].startswith("0x")
    # Async begin/end events pair up by id.
    begins = {ev["id"] for ev in by_phase["b"]}
    ends = {ev["id"] for ev in by_phase["e"]}
    assert begins == ends and len(begins) == len(_CACHE_REQS)


def test_tap_model_discovers_bundles():
    net = MeshNetworkStructural(RouterRTL, 4, 256, 32, 2).elaborate()
    tracer = TxTracer()
    taps = tracer.tap_model(net, prefix="net.")
    names = {tap.name for tap in taps}
    assert "net.in_[0]" in names and "net.out[3]" in names
    assert len(taps) == 8   # 4 terminal inputs + 4 terminal outputs


# -- self-profiling ------------------------------------------------------------------


def test_profiler_phases_and_blocks():
    net, sim = _mesh_sim("static")
    assert sim.profiler is None
    net2 = MeshNetworkStructural(RouterRTL, 4, 256, 32, 2).elaborate()
    sim2 = SimulationTool(net2, sched="static", profile=True)
    # Profiling forces the interpreted path and records why.
    assert sim2._kernel is None
    assert any("profile" in r for r in sim2._kernel_refused)
    sim2.reset()
    sim2.run(10)
    prof = sim2.profiler
    assert prof.cycles >= 10
    assert prof.cycles_per_sec > 0
    report = prof.report(sim2)
    assert set(report["phase_seconds"]) == {
        "settle_pre", "hooks", "tick", "flop", "settle_post"}
    assert report["hot_blocks"] and report["sched"]["mode"] == "static"
    named = [blk["name"] for blk in report["hot_blocks"]]
    assert any("routers" in name for name in named)
    assert "cycles/sec" in prof.summary(sim2)


# -- export schema -------------------------------------------------------------------


def test_report_schema_and_serialization(tmp_path):
    sim = _run_mesh_traffic("static")
    report = sim.telemetry.report()
    data = report.to_dict()
    assert data["schema"] == TelemetryReport.SCHEMA
    assert set(data) == {
        "schema", "design", "ncycles", "num_events", "sched",
        "counters", "subtrees", "leaf_totals", "derived",
        "histograms", "transactions", "profile", "observe",
    }
    assert data["observe"] is None      # observatory idle
    assert data["design"] == "MeshNetworkStructural"
    assert data["sched"]["kernel"] is True
    total = sum(v for k, v in data["leaf_totals"].items()
                if k.startswith("flits"))
    assert total == sum(v for k, v in data["counters"].items()
                        if "flits" in k) > 0

    json_path = tmp_path / "report.json"
    assert json.loads(report.to_json(json_path)) == data
    with open(json_path) as handle:
        assert json.load(handle) == data

    csv_path = tmp_path / "report.csv"
    csv_text = report.to_csv(csv_path)
    lines = csv_text.splitlines()
    assert lines[0] == "kind,name,value"
    assert len(lines) == 1 + len(data["counters"])
    assert "telemetry report: MeshNetworkStructural" in report.summary()


def test_report_derives_cpi():
    class _Proc(Model):
        def __init__(s):
            s.num_instrs = 0
            s.counter("insts_retired", state=("num_instrs",))

            @s.tick_fl
            def logic():
                if not s.reset:
                    s.num_instrs += 1

    sim = SimulationTool(_Proc().elaborate())
    sim.reset()
    sim.run(10)
    report = sim.telemetry.report()
    retired = report.counters["top.insts_retired"]
    assert retired > 0
    assert report.derived["top.cpi"] == sim.ncycles / retired


def test_activity_report_shim_deprecated():
    net, sim = _mesh_sim("static", collect_stats=True)
    sim.reset()
    sim.run(5)
    with pytest.warns(DeprecationWarning, match="telemetry"):
        legacy = activity_report(sim)
    direct = sim.telemetry.activity()
    assert legacy.ncycles == direct.ncycles
    assert legacy.hot_blocks == direct.hot_blocks
    assert "events/cycle" in direct.summary()


def test_activity_requires_collect_stats():
    _, sim = _mesh_sim("static")
    with pytest.raises(ValueError, match="collect_stats"):
        sim.telemetry.activity()


# -- VCD golden file and exception safety --------------------------------------------


class _VcdCounter(Model):
    def __init__(s):
        s.en = InPort(1)
        s.count = OutPort(4)

        @s.tick_rtl
        def logic():
            if s.reset:
                s.count.next = 0
            elif s.en:
                s.count.next = s.count + 1


def _write_vcd(path):
    with VCDWriter(path) as vcd:
        model = _VcdCounter().elaborate()
        sim = SimulationTool(model, vcd=vcd)
        sim.reset()
        model.en.value = 1
        sim.run(6)
        model.en.value = 0
        sim.run(2)


def test_vcd_matches_golden(tmp_path):
    import os
    path = tmp_path / "counter.vcd"
    _write_vcd(path)
    with open(path) as handle:
        got = handle.read()
    golden_path = os.path.join(
        os.path.dirname(__file__), "golden", "vcd_counter.vcd")
    with open(golden_path) as handle:
        golden = handle.read()
    assert got == golden
    # Timesteps are sparse: every #<cycle> line is followed by at
    # least one value change (cycle 2 of this run — reset held, no
    # activity — must emit nothing).
    lines = got.splitlines()
    for i, line in enumerate(lines):
        if line.startswith("#"):
            assert i + 1 < len(lines) and not lines[i + 1].startswith("#")
    assert "#2\n" not in got
    assert "#10" not in got                     # idle tail cycles


def test_vcd_closes_on_exception(tmp_path):
    path = tmp_path / "crash.vcd"
    with pytest.raises(RuntimeError, match="boom"):
        with VCDWriter(path) as vcd:
            model = _VcdCounter().elaborate()
            sim = SimulationTool(model, vcd=vcd)
            sim.reset()
            sim.run(3)
            raise RuntimeError("boom")
    assert vcd._closed
    # The file is complete up to the failure point: header + samples.
    with open(path) as handle:
        text = handle.read()
    assert "$enddefinitions" in text and "#3" in text
    vcd.close()                                  # idempotent
    with pytest.raises(RuntimeError, match="closed"):
        vcd.sample(99)


def test_vcd_lazy_open(tmp_path):
    path = tmp_path / "never.vcd"
    vcd = VCDWriter(path)
    vcd.close()
    assert not path.exists()


def test_simulation_tool_close_closes_vcd(tmp_path):
    path = tmp_path / "simclose.vcd"
    vcd = VCDWriter(path)
    model = _VcdCounter().elaborate()
    with SimulationTool(model, vcd=vcd) as sim:
        sim.reset()
        sim.run(2)
    assert vcd._closed
    sim.close()                                  # idempotent


# -- doctests ------------------------------------------------------------------------


@pytest.mark.parametrize("modname", [
    "repro.telemetry.counters",
])
def test_telemetry_doctests(modname):
    import importlib
    mod = importlib.import_module(modname)
    result = doctest.testmod(mod)
    assert result.attempted > 0
    assert result.failed == 0


# -- reset() vs telemetry ------------------------------------------------------------


def test_reset_zeroes_python_counters_and_histograms():
    """reset() must agree with a fresh simulator: python-kind counters
    (no signal/state backing) and histograms restart from zero, and a
    deterministic re-run reproduces the first run's totals exactly."""

    class _Instrumented(Model):
        def __init__(s):
            s.out = OutPort(8)
            s.acc = Wire(8)
            s.events = s.counter("events")
            s.lat = s.histogram("lat")

            @s.tick_rtl
            def seq():
                if s.reset:
                    s.acc.next = 0
                else:
                    s.acc.next = s.acc.value + 1
                    s.events.incr()
                    s.lat.observe(int(s.acc.value) % 4)
                s.out.next = s.acc.value

    m = _Instrumented().elaborate()
    sim = SimulationTool(m)

    def run_once():
        sim.reset()
        sim.run(25)
        return (dict(sim.telemetry.counters()),
                {k: dict(h.bins)
                 for k, h in m._all_histograms.items()})

    first = run_once()
    assert first[0]["top.events"] == 25
    assert sum(first[1]["top.lat"].values()) == 25

    # Mid-run reset: totals accumulated so far must not leak into the
    # next run's telemetry.
    sim.reset()
    sim.run(7)
    assert sim.telemetry.counters()["top.events"] == 7
    second = run_once()
    assert second == first


@pytest.mark.parametrize("sched", ["event", "static"])
def test_reset_rerun_matches_fresh_sim_on_mesh(sched):
    """After reset() a mesh re-run produces the same counter totals as
    a brand-new simulator — including under the static schedule, whose
    gating flags must be re-armed in place."""

    def drive(net, sim, ncycles):
        for cyc in range(ncycles):
            for i in range(4):
                net.in_[i].val.value = 1 if (cyc + i) % 3 else 0
                net.in_[i].msg.value = ((cyc + i) % 4) << 14
                net.out[i].rdy.value = 1
            sim.cycle()
        return dict(sim.telemetry.counters())

    net, sim = _mesh_sim(sched)
    sim.reset()
    fresh = drive(net, sim, 60)
    sim.reset()
    again = drive(net, sim, 60)
    assert again == fresh
