"""Smoke tests: every example script must run to completion.

The examples double as end-to-end integration tests of the public API
surface (the paper's Figure 3 flow from model to tools to outputs).
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = [
    "quickstart.py",
    "dotprod_accelerator.py",
    "mesh_network.py",
    "simjit_demo.py",
    "translate_to_verilog.py",
    "auto_specialize_tile.py",
    "memory_over_network.py",
    "mesh_telemetry_demo.py",
    "resilience_demo.py",
    "observe_demo.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True, text=True, timeout=560,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout[-2000:]}\n"
        f"{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script} produced no output"
