"""Compiled instrumentation (SimJIT obs runtime) tests.

The contract under test: observability attachments — flight
recorders, watchpoints, val/rdy transaction taps, signal-backed
histograms, telemetry counters — produce **bit-identical** results
whether they sample per cycle from Python (the hook path) or are
compiled into the SimJIT kernel and drained per batch.  The reference
for every equivalence test is the same DUT with the hook path forced
(a no-op Python cycle hook registered before any attachment makes the
sim ineligible for compiled instrumentation), and where the design
also runs interpreted, the interpreted static substrate as well.

Also covered: watchpoint halts stopping batches at the exact hit
cycle, mid-run dearming back to the hook path when a cycle hook is
registered late, the ``instrument-fallback`` warning taxonomy for
unlowerable constructs, and the content-addressed ``.so`` cache.
"""

import os
import random
import warnings

import pytest

from repro import set_telemetry_enabled
from repro.core import Model, SimulationTool
from repro.core.signals import InPort, OutPort
from repro.core.simjit import SimJITRTL
from repro.net import MeshNetworkStructural, RouterRTL
from repro.observe import (
    WatchpointHit,
    changed,
    rose,
    stable_for,
    value_is,
)
from repro.resilience.warnings import ResilienceWarning

HAVE_CC = True
try:
    import cffi  # noqa: F401
except ImportError:          # pragma: no cover - image bakes cffi in
    HAVE_CC = False

needs_cc = pytest.mark.skipif(not HAVE_CC, reason="cffi unavailable")

MESH_SIGNALS = ["routers[0].grant_val[0]", "routers[0].hold_val[0]",
                "routers[3].grant_val[0]", "routers[3].hold_val[0]"]


# -- DUT builders -------------------------------------------------------------


def _jit_mesh(nrouters=4, telemetry=True, force_hooks=False):
    """Whole-mesh single-engine SimJIT sim (compiled-instrumentation
    eligible unless ``force_hooks`` registers a hook first)."""
    prev = set_telemetry_enabled(telemetry)
    try:
        net = MeshNetworkStructural(
            RouterRTL, nrouters, 256, 32, 2).elaborate()
        wrapper = SimJITRTL(net).specialize().elaborate()
    finally:
        set_telemetry_enabled(prev)
    sim = SimulationTool(wrapper)
    if force_hooks:
        sim.add_cycle_hook(lambda cycle: None)
    return wrapper, sim


def _interp_mesh(nrouters=4, telemetry=True):
    prev = set_telemetry_enabled(telemetry)
    try:
        net = MeshNetworkStructural(
            RouterRTL, nrouters, 256, 32, 2).elaborate()
    finally:
        set_telemetry_enabled(prev)
    return net, SimulationTool(net, sched="static")


def _drive_mesh(model, sim, seed=42,
                chunks=(1, 3, 17, 200, 64, 150)):
    """Deterministic standing-traffic schedule: redraw all terminal
    inputs between run() batches (inputs are constant within a batch,
    so per-cycle and batched sampling see identical streams)."""
    rnd = random.Random(seed)
    for port in model.out:
        port.rdy.value = 1
    for chunk in chunks:
        for port in model.in_:
            port.val.value = rnd.randint(0, 1)
            port.msg.value = rnd.randrange(1 << port.msg.nbits)
        sim.run(chunk)


def _arm_mesh(model, sim):
    rec = sim.flight_recorder(signals=MESH_SIGNALS, depth=64)
    wps = [
        sim.watch(rose("routers[3].grant_val[0]")
                  & value_is("routers[3].hold_val[0]", 0, 1),
                  name="grant-and-hold"),
        sim.watch(changed("routers[0].grant_val[0]")
                  | ~changed("routers[3].grant_val[0]"),
                  name="or-not"),
    ]
    tracer = sim.telemetry.trace()
    tracer.tap_model(model)
    return rec, wps, tracer


def _collect(sim, rec, wps, tracer):
    return {
        "ncycles": sim.ncycles,
        "window": rec.window().to_dict(),
        "nsamples": rec.nsamples,
        "fires": [(wp.name, wp.fire_cycles(), wp.n_fires)
                  for wp in wps],
        "summary": tracer.summary(),
        "chrome": tracer.chrome_trace(),
        "counters": sim.telemetry.counters(),
    }


# -- full-stack equivalence ---------------------------------------------------


@needs_cc
def test_mesh_compiled_matches_hook_path():
    """Every attachment kind at once: compiled sampling on a 4-router
    SimJIT mesh is bit-identical to the forced hook path on the same
    compiled design."""
    results = []
    for force in (False, True):
        model, sim = _jit_mesh(force_hooks=force)
        rec, wps, tracer = _arm_mesh(model, sim)
        if force:
            assert rec._cidx is None
            assert all(wp._cwp is None for wp in wps)
            assert tracer._instr is None
        else:
            assert sim._jit_instr is not None and sim._jit_instr.active
            assert rec._cidx is not None
            assert all(wp._cwp is not None for wp in wps)
            assert tracer._instr is not None
            assert all(t._cidx is not None for t in tracer.taps)
        _drive_mesh(model, sim)
        results.append(_collect(sim, rec, wps, tracer))
    compiled, hooks = results
    assert compiled == hooks
    assert compiled["window"]["changes"], "window should not be empty"
    assert any(n for _, _, n in compiled["fires"]), \
        "watchpoints should fire under traffic"
    assert compiled["summary"]["taps"], "tracer should have taps"


@needs_cc
def test_mesh_compiled_matches_interpreted_substrate():
    """Recorder windows and counters agree between the compiled
    SimJIT mesh and the interpreted static-schedule mesh under the
    same stimulus."""
    model_j, sim_j = _jit_mesh()
    model_i, sim_i = _interp_mesh()
    rec_j = sim_j.flight_recorder(signals=MESH_SIGNALS, depth=64)
    rec_i = sim_i.flight_recorder(signals=MESH_SIGNALS, depth=64)
    assert rec_j._cidx is not None
    assert rec_i._cidx is None
    _drive_mesh(model_j, sim_j)
    _drive_mesh(model_i, sim_i)
    assert rec_j.window().to_dict() == rec_i.window().to_dict()
    assert sim_j.telemetry.counters() == sim_i.telemetry.counters()


@needs_cc
def test_per_cycle_step_path_matches_hooks():
    """cycle()-driven sims share the compiled sampling path (one-cycle
    batches) and stay bit-identical under per-cycle varying inputs."""
    results = []
    for force in (False, True):
        model, sim = _jit_mesh(force_hooks=force)
        rec, wps, tracer = _arm_mesh(model, sim)
        rnd = random.Random(9)
        for port in model.out:
            port.rdy.value = 1
        for _ in range(120):
            for port in model.in_:
                port.val.value = rnd.randint(0, 1)
                port.msg.value = rnd.randrange(1 << port.msg.nbits)
            sim.cycle()
        results.append(_collect(sim, rec, wps, tracer))
    assert results[0] == results[1]


# -- watchpoint halts ---------------------------------------------------------


@needs_cc
def test_halting_watchpoint_stops_batch_at_exact_cycle():
    outcomes = []
    for force in (False, True):
        model, sim = _jit_mesh(force_hooks=force)
        wp = sim.watch(rose("routers[0].grant_val[0]"), name="halt",
                       halt=True)
        assert (wp._cwp is None) == force
        rnd = random.Random(7)
        for port in model.out:
            port.rdy.value = 1
        for port in model.in_:
            port.val.value = rnd.randint(0, 1)
            port.msg.value = rnd.randrange(1 << port.msg.nbits)
        with pytest.raises(WatchpointHit) as excinfo:
            sim.run(10_000)
        outcomes.append(
            (excinfo.value.diagnostic["cycle"], sim.ncycles,
             excinfo.value.diagnostic["values"]))
    assert outcomes[0] == outcomes[1]
    # The sim stopped on the hit cycle, not at the end of the batch.
    assert outcomes[0][1] < 10_000


@needs_cc
def test_once_watchpoint_detaches_after_compiled_hit():
    model, sim = _jit_mesh()
    wp = sim.watch(changed("routers[3].grant_val[0]"), name="once",
                   once=True)
    assert wp._cwp is not None
    _drive_mesh(model, sim)
    assert wp.n_fires == 1
    assert wp.sim is None and wp._cwp is None


# -- mid-run dearm ------------------------------------------------------------


@needs_cc
def test_late_cycle_hook_dearms_and_preserves_state():
    """Registering a Python cycle hook after compiled attachments are
    armed converts them to the hook path with state intact; results
    match a run that used hooks throughout."""
    results = []
    for force in (False, True):
        model, sim = _jit_mesh(force_hooks=force)
        rec, wps, tracer = _arm_mesh(model, sim)
        rnd = random.Random(5)
        for port in model.out:
            port.rdy.value = 1
        for port in model.in_:
            port.val.value = rnd.randint(0, 1)
            port.msg.value = rnd.randrange(1 << port.msg.nbits)
        sim.run(300)
        seen = []
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            sim.add_cycle_hook(seen.append)
        kinds = [getattr(w.message, "kind", "") for w in caught]
        if not force:
            assert "instrument-fallback" in kinds
            assert rec._cidx is None
            assert all(wp._cwp is None for wp in wps)
            assert tracer._instr is None
        sim.run(100)
        assert seen == list(range(300, 400))
        results.append(_collect(sim, rec, wps, tracer))
    assert results[0] == results[1]


# -- fallback warnings --------------------------------------------------------


@needs_cc
def test_unlowerable_watchpoint_warns_and_uses_hooks():
    model, sim = _jit_mesh()
    with pytest.warns(ResilienceWarning) as record:
        wp = sim.watch(stable_for("routers[0].grant_val[0]", 4),
                       name="py-only")
    kinds = {getattr(w.message, "kind", "") for w in record}
    assert "instrument-fallback" in kinds
    assert wp._cwp is None and wp._bound is not None
    _drive_mesh(model, sim, chunks=(50,))
    # The rest of the sim still runs compiled batches.
    assert sim.ncycles == 50


@needs_cc
def test_slice_tap_recorder_falls_back_with_warning():
    model, sim = _jit_mesh()
    with pytest.warns(ResilienceWarning) as record:
        rec = sim.flight_recorder(
            signals=["routers[0].grant_val[0]",
                     model.in_[0].msg[0:4]],    # slices sample from Python
            depth=16)
    kinds = {getattr(w.message, "kind", "") for w in record}
    assert "instrument-fallback" in kinds
    assert rec._cidx is None       # all-or-nothing: whole recorder
    _drive_mesh(model, sim, chunks=(40,))
    assert rec.nsamples == 40


# -- signal-backed histograms -------------------------------------------------


class _HistDut(Model):
    """Counter whose value stream feeds a gated signal histogram."""

    def __init__(s):
        s.en = InPort(1)
        s.count = OutPort(4)
        s.hist = s.histogram("vals", "sampled count values",
                             sig=s.count, when=s.en)

        @s.tick_rtl
        def seq_logic():
            if s.reset:
                s.count.next = 0
            elif s.en:
                s.count.next = s.count + 1


@needs_cc
def test_signal_histogram_compiled_matches_hooks():
    bins = []
    for force in (False, True):
        prev = set_telemetry_enabled(True)
        try:
            dut = SimJITRTL(
                _HistDut().elaborate()).specialize().elaborate()
        finally:
            set_telemetry_enabled(prev)
        sim = SimulationTool(dut)
        if force:
            sim.add_cycle_hook(lambda cycle: None)
        sim.reset()
        rnd = random.Random(1)
        for _ in range(10):
            dut.en.value = rnd.randint(0, 1)
            sim.run(rnd.randrange(1, 40))
        hists = sim.telemetry.histograms()
        assert set(hists) == {"top.vals"}
        hist = hists["top.vals"]
        bins.append((dict(hist.bins), hist.count, hist.mean))
    assert bins[0] == bins[1]
    assert bins[0][1] > 0, "gated histogram should observe samples"


# -- content-addressed .so cache ----------------------------------------------


@needs_cc
def test_so_cache_hit_and_optout(tmp_path, monkeypatch):
    monkeypatch.setenv("SIMJIT_CACHE_DIR", str(tmp_path))
    net = MeshNetworkStructural(RouterRTL, 4, 256, 32, 2).elaborate()
    spec1 = SimJITRTL(net)
    spec1.specialize()
    assert spec1.overheads["cache_hit"] is False
    libs = [p for p in os.listdir(tmp_path) if p.endswith(".so")]
    assert len(libs) == 1
    assert not [p for p in os.listdir(tmp_path) if ".tmp" in p], \
        "temporary artifacts must not survive a build"

    net2 = MeshNetworkStructural(RouterRTL, 4, 256, 32, 2).elaborate()
    spec2 = SimJITRTL(net2)
    spec2.specialize()
    assert spec2.overheads["cache_hit"] is True

    monkeypatch.setenv("REPRO_SIMJIT_CACHE", "0")
    net3 = MeshNetworkStructural(RouterRTL, 4, 256, 32, 2).elaborate()
    spec3 = SimJITRTL(net3)
    spec3.specialize()
    assert spec3.overheads["cache_hit"] is False


@needs_cc
def test_so_cache_key_tracks_generated_source(tmp_path, monkeypatch):
    monkeypatch.setenv("SIMJIT_CACHE_DIR", str(tmp_path))
    SimJITRTL(MeshNetworkStructural(
        RouterRTL, 4, 256, 32, 2).elaborate()).specialize()
    SimJITRTL(MeshNetworkStructural(
        RouterRTL, 4, 256, 16, 2).elaborate()).specialize()
    libs = [p for p in os.listdir(tmp_path) if p.endswith(".so")]
    assert len(libs) == 2, "different designs must get different keys"
