"""Tests for the ring network topology."""

import pytest

from repro.core.simjit import SimJITCL
from repro.net import (
    NetworkTrafficHarness,
    RingNetworkStructural,
    RouterRingCL,
    measure_zero_load_latency,
)

NMSGS, DATA_NBITS, NENTRIES = 256, 32, 2


def _ring(nrouters=8):
    return RingNetworkStructural(
        nrouters, NMSGS, DATA_NBITS, NENTRIES).elaborate()


def test_all_pairs_delivery():
    harness = NetworkTrafficHarness(_ring(6))
    for src in range(6):
        for dest in range(6):
            if src != dest:
                harness.send_single(src, dest)


def test_shortest_direction_routing():
    """Neighbors are one hop in either direction; latency must not
    depend on which side of the ring the destination sits."""
    harness = NetworkTrafficHarness(_ring(8))
    cw = harness.send_single(0, 1)
    ccw = harness.send_single(0, 7)
    assert cw == ccw


def test_latency_scales_with_ring_distance():
    harness = NetworkTrafficHarness(_ring(8))
    near = harness.send_single(0, 1)
    far = harness.send_single(0, 4)      # diameter
    assert far > near


def test_uniform_random_no_loss():
    harness = NetworkTrafficHarness(_ring(8), seed=4)
    stats = harness.run_uniform_random(0.15, 300)
    assert stats.ejected == stats.injected


def test_ring_simjit_cl_equivalent():
    interp_stats = NetworkTrafficHarness(_ring(8), seed=6) \
        .run_uniform_random(0.2, 150)
    jit = SimJITCL(_ring(8)).specialize().elaborate()
    jit_stats = NetworkTrafficHarness(jit, seed=6) \
        .run_uniform_random(0.2, 150)
    assert interp_stats.latencies == jit_stats.latencies


def test_ring_saturates_below_mesh():
    """Topology comparison: at equal terminal count, the bisection-
    limited ring delivers less uniform-random throughput than the
    mesh."""
    from repro.net import MeshNetworkStructural, RouterCL

    ring_stats = NetworkTrafficHarness(_ring(16), seed=2) \
        .run_uniform_random(0.5, 400, warmup=100)
    mesh = MeshNetworkStructural(
        RouterCL, 16, NMSGS, DATA_NBITS, NENTRIES).elaborate()
    mesh_stats = NetworkTrafficHarness(mesh, seed=2) \
        .run_uniform_random(0.5, 400, warmup=100)
    assert ring_stats.throughput < mesh_stats.throughput
