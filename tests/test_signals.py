"""Unit tests for signals, slices, and struct-typed ports."""

import pytest

from repro import (
    Bits,
    BitStruct,
    Field,
    InPort,
    Model,
    OutPort,
    SimulationTool,
    Wire,
)


class PairMsg(BitStruct):
    hi = Field(8)
    lo = Field(8)


def test_port_width_from_int():
    assert InPort(8).nbits == 8


def test_port_width_from_bits_prototype():
    assert InPort(Bits(12)).nbits == 12


def test_port_width_from_bitstruct():
    assert InPort(PairMsg).nbits == 16


def test_port_array_shorthand():
    ports = InPort[4](8)
    assert len(ports) == 4
    assert all(isinstance(p, InPort) and p.nbits == 8 for p in ports)


def test_value_read_write_before_simulation():
    w = Wire(8)
    w.value = 42
    assert w.value == 42
    assert isinstance(w.value, Bits)


def test_value_write_masks():
    w = Wire(4)
    w.value = 0x1F
    assert w.value == 0xF


def test_next_is_write_only():
    w = Wire(8)
    with pytest.raises(AttributeError):
        _ = w.next


def test_struct_port_returns_struct_view():
    p = Wire(PairMsg)
    p.value = (0xAB << 8) | 0xCD
    assert isinstance(p.value, PairMsg)
    assert p.value.hi == 0xAB
    assert p.value.lo == 0xCD


def test_struct_field_access_on_signal():
    p = Wire(PairMsg)
    p.value = (0xAB << 8) | 0xCD
    assert p.hi.value == 0xAB
    assert p.lo.value == 0xCD


def test_struct_field_write_on_signal():
    p = Wire(PairMsg)
    p.hi.value = 0x12
    p.lo.value = 0x34
    assert p.value.to_bits().uint() == 0x1234


def test_slice_read_write():
    w = Wire(8)
    w.value = 0xAB
    assert w[0:4].value == 0xB
    w[0:4].value = 0x5
    assert w.value == 0xA5


def test_single_bit_access():
    w = Wire(8)
    w.value = 0b1000_0000
    assert w[7].value == 1
    assert w[0].value == 0
    w[0].value = 1
    assert w.value == 0b1000_0001


def test_nested_slice():
    w = Wire(16)
    w.value = 0xABCD
    assert w[8:16][0:4].value == 0xB


def test_operator_forwarding():
    w = Wire(8)
    w.value = 10
    assert w + 1 == 11
    assert w - 1 == 9
    assert w * 2 == 20
    assert (w << 1) == 20
    assert (w >> 1) == 5
    assert (w & 0xF) == 10
    assert (w | 0x10) == 0x1A
    assert (w ^ 0xFF) == 0xF5
    assert w == 10
    assert w != 11
    assert w < 11
    assert w > 9
    assert w <= 10
    assert w >= 10
    assert int(w) == 10
    assert bool(w)


def test_signal_to_signal_comparison():
    a, b = Wire(8), Wire(8)
    a.value = 5
    b.value = 5
    assert a == b
    b.value = 6
    assert a < b


def test_out_of_range_bit_index_raises():
    with pytest.raises(IndexError):
        Wire(8)[8]


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError):
        Wire(8).no_such_field


class _SlicePipeline(Model):
    """Register with slice writes via .next from a tick block."""

    def __init__(s):
        s.in_ = InPort(8)
        s.out = OutPort(8)

        @s.tick_rtl
        def logic():
            s.out[0:4].next = s.in_[4:8].value
            s.out[4:8].next = s.in_[0:4].value


def test_slice_next_writes_compose():
    model = _SlicePipeline().elaborate()
    sim = SimulationTool(model)
    sim.reset()
    model.in_.value = 0xAB
    sim.cycle()
    assert model.out == 0xBA


class _StructPorts(Model):
    """Struct-typed ports with field access in behavioral blocks."""

    def __init__(s):
        s.in_ = InPort(PairMsg)
        s.out = OutPort(PairMsg)

        @s.combinational
        def swap():
            s.out.hi.value = s.in_.lo.value
            s.out.lo.value = s.in_.hi.value


def test_struct_field_access_in_comb_block():
    model = _StructPorts().elaborate()
    sim = SimulationTool(model)
    msg = PairMsg()
    msg.hi = 0x11
    msg.lo = 0x22
    model.in_.value = msg
    sim.eval_combinational()
    assert model.out.value.hi == 0x22
    assert model.out.value.lo == 0x11
