"""Checkpoint/restore tests: round-trip equals uninterrupted run.

Each DUT (cache, 16-router mesh, processor) is driven by a stimulus
that is a pure function of ``sim.ncycles``, so rewinding the cycle
counter automatically rewinds the stimulus: after ``restore`` the
replayed tail must match the original tail observation-for-observation
and the final checkpoints must fingerprint identically.  The property
is asserted on the event-driven, static-scheduled, and SimJIT
substrates.
"""

import pytest

from repro import (
    CheckpointRing,
    Model,
    OutPort,
    SEUInjector,
    SimulationTool,
    Wire,
)
from repro.core.simjit import auto_specialize
from repro.mem import CacheCL, MemMsg, MemReqMsg, TestMemory
from repro.net import MeshNetworkStructural, RouterRTL
from repro.proc import ProcCL, ProcRTL, assemble
from repro.proc.harness import ProcHarness
from repro.resilience import CheckpointError
from repro.verif import RNG


# -- DUT builders: (model, sim, drive(cycle), observe()) ------------------------------


class _CacheHarness(Model):
    def __init__(s, cache):
        s.cache = cache
        s.mem = TestMemory(nports=1, latency=2, size=1 << 16)
        s.connect(s.cache.mem_ifc.req, s.mem.ports[0].req)
        s.connect(s.cache.mem_ifc.resp, s.mem.ports[0].resp)


def _build_cache(sched="auto", jit=False):
    h = _CacheHarness(CacheCL(MemMsg(), MemMsg(), nlines=4))
    if jit:
        auto_specialize(h)
    h.elaborate()
    sim = SimulationTool(h, sched=sched)
    port = h.cache.cpu_ifc

    def drive(cycle):
        port.resp_rdy.value = 1
        if cycle % 2 == 0:
            port.req_val.value = 1
            if (cycle // 2) % 3 == 0:
                port.req_msg.value = MemReqMsg.mk_wr(
                    (cycle * 4) % 256, cycle & 0xFFFF)
            else:
                # Stride-64 reads force conflict evictions.
                port.req_msg.value = MemReqMsg.mk_rd((cycle * 64) % 4096)
        else:
            port.req_val.value = 0

    def observe():
        return (int(port.req_rdy), int(port.resp_val),
                int(port.resp_msg))

    return h, sim, drive, observe


def _build_mesh16(sched="auto", jit=False, nrouters=16):
    net = MeshNetworkStructural(RouterRTL, nrouters, 256, 32, 2)
    if jit:
        auto_specialize(net)
    net.elaborate()
    sim = SimulationTool(net, sched=sched)
    dest_lo, _ = net.msg_type.field_slice("dest")
    pay_lo, _ = net.msg_type.field_slice("payload")

    def drive(cycle):
        for i in range(nrouters):
            port = net.in_[i]
            if (cycle + i) % 4 < 2:
                port.val.value = 1
                dest = (i * 7 + cycle) % nrouters
                port.msg.value = (dest << dest_lo) | (
                    ((cycle << 4) | i) & 0xFFFF) << pay_lo
            else:
                port.val.value = 0
            net.out[i].rdy.value = 0 if (cycle + i) % 5 == 0 else 1

    def observe():
        return tuple(
            (int(net.out[i].val), int(net.out[i].msg))
            for i in range(nrouters))

    return net, sim, drive, observe


_LOOP_PROGRAM = assemble("""
    addi r1, r0, 1
    addi r2, r0, 0
    addi r3, r0, 0x100
loop:
    add  r2, r2, r1
    sw   r2, 0(r3)
    lw   r4, 0(r3)
    addi r3, r3, 4
    beq  r0, r0, loop
""")


def _build_proc(sched="auto", jit=False, level="cl"):
    proc_cls = {"cl": ProcCL, "rtl": ProcRTL}[level]
    proc = proc_cls()
    if jit:
        from repro.core.simjit import SimJITRTL
        proc = SimJITRTL(proc.elaborate()).specialize()
    h = ProcHarness(proc, mem_latency=1)
    h.elaborate()
    h.mem.load(0, _LOOP_PROGRAM)
    sim = SimulationTool(h, sched=sched)

    def drive(cycle):
        pass                       # self-running

    def observe():
        return h.line_trace()

    return h, sim, drive, observe


# -- the round-trip property ----------------------------------------------------------


def _step(sim, drive, observe):
    drive(sim.ncycles)
    sim.eval_combinational()
    sim.cycle()
    return observe()


def _roundtrip(build, total=120, at=60):
    """save at ``at``, run to ``total``, restore, re-run: the replayed
    tail and the final fingerprint must match the original run."""
    m, sim, drive, observe = build()
    sim.reset()
    for _ in range(at):
        _step(sim, drive, observe)
    cp = sim.save_checkpoint()
    assert cp.ncycles == sim.ncycles

    tail1 = [_step(sim, drive, observe) for _ in range(total - at)]
    fp1 = sim.save_checkpoint().fingerprint()

    sim.restore_checkpoint(cp)
    assert sim.ncycles == cp.ncycles
    tail2 = [_step(sim, drive, observe) for _ in range(total - at)]
    fp2 = sim.save_checkpoint().fingerprint()

    assert tail1 == tail2
    assert fp1 == fp2

    # ...and the whole dance perturbed nothing: a fresh simulator that
    # never checkpoints produces the identical tail and end state.
    m0, sim0, drive0, observe0 = build()
    sim0.reset()
    ref = [_step(sim0, drive0, observe0) for _ in range(total)]
    assert ref[at:] == tail1
    assert sim0.save_checkpoint().fingerprint() == fp1


CASES = [
    ("event", False),
    ("static", False),
    ("auto", True),            # SimJIT-specialized submodels
]


@pytest.mark.parametrize("sched,jit", CASES)
def test_cache_roundtrip(sched, jit):
    _roundtrip(lambda: _build_cache(sched, jit))


@pytest.mark.parametrize("sched,jit", CASES)
def test_mesh16_roundtrip(sched, jit):
    _roundtrip(lambda: _build_mesh16(sched, jit))


@pytest.mark.parametrize("sched,jit", CASES)
def test_proc_roundtrip(sched, jit):
    level = "rtl" if jit else "cl"
    _roundtrip(lambda: _build_proc(sched, jit, level), total=100, at=50)


def test_proc_rtl_roundtrip_interpreted():
    _roundtrip(lambda: _build_proc("static", False, "rtl"),
               total=100, at=50)


# -- RNG streams ----------------------------------------------------------------------


def test_checkpoint_restores_tracked_rng_streams():
    class _Sink(Model):
        def __init__(s):
            s.out = OutPort(16)
            s.acc = Wire(16)

            @s.tick_rtl
            def seq():
                if s.reset:
                    s.acc.next = 0
                    s.out.next = 0
                else:
                    s.out.next = s.acc.value

    m = _Sink().elaborate()
    sim = SimulationTool(m)
    rng = sim.track_rng(RNG(77).fork("stimulus"))
    sim.reset()

    def step():
        m.acc.value = rng.getrandbits(16)
        sim.cycle()
        return int(m.out)

    for _ in range(10):
        step()
    cp = sim.save_checkpoint()
    tail1 = [step() for _ in range(10)]
    sim.restore_checkpoint(cp)
    tail2 = [step() for _ in range(10)]
    # Without RNG state in the checkpoint the streams would diverge.
    assert tail1 == tail2


def test_restore_rejects_rng_stream_mismatch():
    m, sim, drive, observe = _build_cache()
    sim.reset()
    cp = sim.save_checkpoint()
    sim.track_rng(RNG(1))
    with pytest.raises(CheckpointError, match="RNG"):
        sim.restore_checkpoint(cp)


# -- telemetry ------------------------------------------------------------------------


def test_checkpoint_rewinds_counters_and_histograms():
    net, sim, drive, observe = _build_mesh16(nrouters=4)
    sim.reset()
    for _ in range(40):
        _step(sim, drive, observe)
    cp = sim.save_checkpoint()
    at_save = sim.telemetry.counters()
    for _ in range(40):
        _step(sim, drive, observe)
    assert sim.telemetry.counters() != at_save
    sim.restore_checkpoint(cp)
    assert sim.telemetry.counters() == at_save


# -- refusals -------------------------------------------------------------------------


def test_checkpoint_refuses_blocking_fl_adapters():
    from repro.accel import DotProductFL, XcelMsg
    from repro.mem import MemMsg as _MemMsg

    class _Harness(Model):
        def __init__(s):
            s.accel = DotProductFL(_MemMsg(), XcelMsg())
            s.mem = TestMemory(nports=1, latency=1, size=1 << 16)
            s.connect(s.accel.mem_ifc.req, s.mem.ports[0].req)
            s.connect(s.accel.mem_ifc.resp, s.mem.ports[0].resp)

    h = _Harness().elaborate()
    sim = SimulationTool(h)
    sim.reset()
    with pytest.raises(CheckpointError, match="blocking FL"):
        sim.save_checkpoint()


def test_restore_rejects_foreign_checkpoint():
    _, sim_cache, _, _ = _build_cache()
    net, sim_mesh, _, _ = _build_mesh16(nrouters=4)
    sim_cache.reset()
    sim_mesh.reset()
    cp = sim_cache.save_checkpoint()
    with pytest.raises(CheckpointError, match="net"):
        sim_mesh.restore_checkpoint(cp)


# -- checkpoint ring + replay under fault injection -----------------------------------


def test_checkpoint_ring_keeps_interval_snapshots():
    m, sim, drive, observe = _build_mesh16(nrouters=4)
    ring = CheckpointRing(sim, interval=16, keep=3)
    sim.reset()
    for _ in range(100):
        _step(sim, drive, observe)
    assert len(ring.checkpoints) == 3
    cycles = [cp.ncycles for cp in ring.checkpoints]
    assert cycles == sorted(cycles)
    assert all(cp.ncycles % 16 == 0 for cp in ring.checkpoints)
    target = cycles[-1] + 5
    assert ring.nearest(target).ncycles == cycles[-1]
    assert ring.nearest(cycles[0] - 1) is None


def test_ring_rejects_bad_interval():
    m, sim, _, _ = _build_mesh16(nrouters=4)
    with pytest.raises(ValueError, match="interval"):
        CheckpointRing(sim, interval=0)


def test_replay_faulted_run_from_nearest_checkpoint():
    """Deterministic replay: restore the nearest ring checkpoint and
    re-run — the injector hooks re-fire on the same cycles, so the
    replayed observations are identical to the original timeline."""

    def build():
        net, sim, drive, observe = _build_mesh16(nrouters=4)
        SEUInjector("routers[1].priority[2]", p=0.05, seed=9).install(sim)
        SEUInjector("routers[2].hold_val[0]", cycles=[30, 55],
                    bit=0).install(sim)
        return net, sim, drive, observe

    net, sim, drive, observe = build()
    ring = CheckpointRing(sim, interval=16, keep=4)
    sim.reset()
    timeline = {}
    for _ in range(80):
        cyc = sim.ncycles
        timeline[cyc] = _step(sim, drive, observe)
    end_fp = sim.save_checkpoint().fingerprint()

    # "failure" observed around cycle 70: rewind to the nearest
    # checkpoint and replay only the suffix.
    cp = ring.nearest(70)
    assert cp is not None and cp.ncycles <= 70
    sim.restore_checkpoint(cp)
    replayed = {}
    while sim.ncycles in timeline:
        cyc = sim.ncycles
        replayed[cyc] = _step(sim, drive, observe)
    assert replayed == {c: timeline[c] for c in replayed}
    assert replayed                      # actually replayed something
    assert sim.save_checkpoint().fingerprint() == end_fp
