"""Tests for TestMemory and the FL/CL/RTL caches."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Model, SimulationTool
from repro.mem import (
    MEM_REQ_WRITE,
    CacheCL,
    CacheFL,
    CacheRTL,
    MemMsg,
    MemReqMsg,
    TestMemory,
)


class _MemTester:
    """Drives a ChildReqRespBundle port with blocking transactions."""

    def __init__(self, sim, port, max_cycles=200):
        self.sim = sim
        self.port = port
        self.max_cycles = max_cycles

    def transact(self, req):
        port, sim = self.port, self.sim
        port.req_msg.value = req
        port.req_val.value = 1
        port.resp_rdy.value = 1
        for _ in range(self.max_cycles):
            accepted = int(port.req_val) and int(port.req_rdy)
            sim.cycle()
            if accepted:
                break
        else:
            raise AssertionError("request never accepted")
        port.req_val.value = 0
        for _ in range(self.max_cycles):
            if int(port.resp_val) and int(port.resp_rdy):
                resp = port.resp_msg.value
                sim.cycle()
                port.resp_rdy.value = 0
                return resp
            sim.cycle()
        raise AssertionError("no response")

    def read(self, addr):
        return int(self.transact(MemReqMsg.mk_rd(addr)).data)

    def write(self, addr, data):
        resp = self.transact(MemReqMsg.mk_wr(addr, data))
        assert int(resp.type_) == MEM_REQ_WRITE


# -- TestMemory ------------------------------------------------------------


def _memory_fixture(latency=1, nports=1):
    mem = TestMemory(nports=nports, latency=latency, size=1 << 16)
    mem.elaborate()
    sim = SimulationTool(mem)
    sim.reset()
    return mem, sim


def test_memory_write_then_read():
    mem, sim = _memory_fixture()
    tester = _MemTester(sim, mem.ports[0])
    tester.write(0x100, 0xDEADBEEF)
    assert tester.read(0x100) == 0xDEADBEEF


def test_memory_backdoor_load():
    mem, sim = _memory_fixture()
    mem.load(0x200, [1, 2, 3, 4])
    tester = _MemTester(sim, mem.ports[0])
    assert tester.read(0x204) == 2
    assert mem.read_word(0x20C) == 4


def test_memory_address_word_aligned():
    mem, sim = _memory_fixture()
    mem.write_word(0x100, 0x12345678)
    tester = _MemTester(sim, mem.ports[0])
    assert tester.read(0x102) == 0x12345678   # misaligned -> aligned down


@pytest.mark.parametrize("latency", [1, 2, 5])
def test_memory_latency_enforced(latency):
    mem, sim = _memory_fixture(latency=latency)
    mem.write_word(0x40, 7)
    tester = _MemTester(sim, mem.ports[0])
    start = sim.ncycles
    assert tester.read(0x40) == 7
    elapsed = sim.ncycles - start
    assert elapsed >= latency


def test_memory_multiport_independent():
    mem, sim = _memory_fixture(nports=2)
    t0 = _MemTester(sim, mem.ports[0])
    t1 = _MemTester(sim, mem.ports[1])
    t0.write(0x10, 111)
    t1.write(0x20, 222)
    assert t1.read(0x10) == 111   # ports share storage
    assert t0.read(0x20) == 222


# -- caches -----------------------------------------------------------------


class _CacheHarness(Model):
    def __init__(s, cache):
        s.cache = cache
        s.mem = TestMemory(nports=1, latency=2, size=1 << 16)
        s.connect(s.cache.mem_ifc.req, s.mem.ports[0].req)
        s.connect(s.cache.mem_ifc.resp, s.mem.ports[0].resp)


def _cache_fixture(cache_cls, **kwargs):
    mm = MemMsg()
    harness = _CacheHarness(cache_cls(mm, mm, **kwargs)).elaborate()
    sim = SimulationTool(harness)
    sim.reset()
    tester = _MemTester(sim, harness.cache.cpu_ifc, max_cycles=500)
    return harness, sim, tester


CACHES = [(CacheFL, {}), (CacheCL, {"nlines": 4}), (CacheRTL, {"nlines": 4})]


@pytest.mark.parametrize("cache_cls,kwargs", CACHES)
def test_cache_read_returns_memory_data(cache_cls, kwargs):
    harness, sim, tester = _cache_fixture(cache_cls, **kwargs)
    harness.mem.load(0x100, [10, 20, 30, 40])
    assert tester.read(0x100) == 10
    assert tester.read(0x108) == 30


@pytest.mark.parametrize("cache_cls,kwargs", CACHES)
def test_cache_write_then_read(cache_cls, kwargs):
    harness, sim, tester = _cache_fixture(cache_cls, **kwargs)
    tester.write(0x80, 0xCAFE)
    assert tester.read(0x80) == 0xCAFE


@pytest.mark.parametrize("cache_cls,kwargs", CACHES)
def test_cache_write_through_reaches_memory(cache_cls, kwargs):
    harness, sim, tester = _cache_fixture(cache_cls, **kwargs)
    tester.write(0x90, 1234)
    assert harness.mem.read_word(0x90) == 1234


@pytest.mark.parametrize("cache_cls,kwargs",
                         [(CacheCL, {"nlines": 4}), (CacheRTL, {"nlines": 4})])
def test_cache_hit_faster_than_miss(cache_cls, kwargs):
    harness, sim, tester = _cache_fixture(cache_cls, **kwargs)
    harness.mem.load(0x100, [5, 6, 7, 8])
    start = sim.ncycles
    tester.read(0x100)
    miss_time = sim.ncycles - start
    start = sim.ncycles
    tester.read(0x104)          # same line: hit
    hit_time = sim.ncycles - start
    assert hit_time < miss_time


@pytest.mark.parametrize("cache_cls,kwargs",
                         [(CacheCL, {"nlines": 4}), (CacheRTL, {"nlines": 4})])
def test_cache_miss_statistics(cache_cls, kwargs):
    harness, sim, tester = _cache_fixture(cache_cls, **kwargs)
    for i in range(8):
        tester.read(i * 4)       # two lines: 2 misses, 6 hits
    cache = harness.cache
    assert cache.num_accesses == 8
    assert cache.num_misses == 2
    assert cache.miss_rate() == pytest.approx(0.25)


@pytest.mark.parametrize("cache_cls,kwargs",
                         [(CacheCL, {"nlines": 4}), (CacheRTL, {"nlines": 4})])
def test_cache_conflict_eviction(cache_cls, kwargs):
    """Two addresses mapping to the same set evict each other."""
    harness, sim, tester = _cache_fixture(cache_cls, **kwargs)
    # With 4 lines of 16B, addresses 0x000 and 0x040 share set 0.
    harness.mem.write_word(0x000, 1)
    harness.mem.write_word(0x040, 2)
    assert tester.read(0x000) == 1
    assert tester.read(0x040) == 2
    assert tester.read(0x000) == 1
    assert harness.cache.num_misses == 3


# -- set associativity ---------------------------------------------------------


@pytest.mark.parametrize("cache_cls", [CacheCL, CacheRTL])
def test_two_way_cache_avoids_conflict_thrashing(cache_cls):
    """Alternating between two same-set addresses thrashes a
    direct-mapped cache but hits in a 2-way set-associative one."""
    def misses(assoc):
        harness, sim, tester = _cache_fixture(
            cache_cls, nlines=4, assoc=assoc)
        # nlines=4, assoc=a -> set count 4/a; with 16B lines, 0x000 and
        # 0x040 collide in set 0 for both geometries.
        harness.mem.write_word(0x000, 1)
        harness.mem.write_word(0x040, 2)
        for _ in range(4):
            assert tester.read(0x000) == 1
            assert tester.read(0x040) == 2
        return harness.cache.num_misses

    assert misses(1) == 8        # every access misses
    assert misses(2) == 2        # only the two cold misses


@pytest.mark.parametrize("cache_cls", [CacheCL, CacheRTL])
def test_two_way_lru_evicts_least_recent(cache_cls):
    harness, sim, tester = _cache_fixture(cache_cls, nlines=4, assoc=2)
    # Three lines mapping to set 0 (16B lines, 2 sets): 0x0, 0x40, 0x80.
    harness.mem.write_word(0x000, 1)
    harness.mem.write_word(0x040, 2)
    harness.mem.write_word(0x080, 3)
    tester.read(0x000)           # miss -> way A
    tester.read(0x040)           # miss -> way B
    tester.read(0x000)           # hit, A becomes MRU
    tester.read(0x080)           # miss, evicts LRU = 0x40
    base = harness.cache.num_misses
    tester.read(0x000)           # still resident
    assert harness.cache.num_misses == base
    tester.read(0x040)           # was evicted -> miss
    assert harness.cache.num_misses == base + 1


def test_two_way_rtl_cache_simjit_equivalent():
    from tests.test_simjit import assert_cycle_exact
    assert_cycle_exact(
        lambda: CacheRTL(MemMsg(), MemMsg(), nlines=4, assoc=2),
        ncycles=300)


def test_bad_assoc_rejected():
    with pytest.raises(ValueError):
        CacheRTL(MemMsg(), MemMsg(), nlines=4, assoc=3)
    with pytest.raises(ValueError):
        CacheCL(MemMsg(), MemMsg(), nlines=5, assoc=2)


@settings(max_examples=10, deadline=None)
@given(st.lists(
    st.tuples(st.booleans(),
              st.integers(min_value=0, max_value=63),
              st.integers(min_value=0, max_value=0xFFFFFFFF)),
    min_size=1, max_size=25))
@pytest.mark.parametrize("cache_cls,kwargs",
                         [(CacheCL, {"nlines": 4}), (CacheRTL, {"nlines": 4}),
                          (CacheCL, {"nlines": 4, "assoc": 2}),
                          (CacheRTL, {"nlines": 4, "assoc": 2})])
def test_prop_cache_matches_flat_memory(cache_cls, kwargs, ops):
    """Property: any read/write sequence through the cache observes the
    same values as a flat reference dict."""
    harness, sim, tester = _cache_fixture(cache_cls, **kwargs)
    reference = {}
    for is_write, word_idx, value in ops:
        addr = word_idx * 4
        if is_write:
            tester.write(addr, value)
            reference[addr] = value
        else:
            got = tester.read(addr)
            assert got == reference.get(addr, 0)
