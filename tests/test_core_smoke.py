"""Smoke tests: the paper's Figure 2 models end to end."""

from repro import InPort, Model, OutPort, SimulationTool, bw


class Register(Model):
    def __init__(s, nbits):
        s.in_ = InPort(nbits)
        s.out = OutPort(nbits)

        @s.tick_rtl
        def seq_logic():
            s.out.next = s.in_.value


class Mux(Model):
    def __init__(s, nbits, nports):
        s.in_ = InPort[nports](nbits)
        s.sel = InPort(bw(nports))
        s.out = OutPort(nbits)

        @s.combinational
        def comb_logic():
            s.out.value = s.in_[s.sel.uint()].value


class MuxReg(Model):
    def __init__(s, nbits=8, nports=4):
        s.in_ = [InPort(nbits) for _ in range(nports)]
        s.sel = InPort(bw(nports))
        s.out = OutPort(nbits)

        s.reg_ = Register(nbits)
        s.mux = Mux(nbits, nports)

        s.connect(s.sel, s.mux.sel)
        for i in range(nports):
            s.connect(s.in_[i], s.mux.in_[i])
        s.connect(s.mux.out, s.reg_.in_)
        s.connect(s.reg_.out, s.out)


def test_register():
    model = Register(8).elaborate()
    sim = SimulationTool(model)
    sim.reset()
    model.in_.value = 42
    sim.cycle()
    assert model.out == 42
    model.in_.value = 13
    assert model.out == 42      # not yet clocked
    sim.cycle()
    assert model.out == 13


def test_mux():
    model = Mux(8, 4).elaborate()
    sim = SimulationTool(model)
    for i in range(4):
        model.in_[i].value = 10 + i
    for sel in range(4):
        model.sel.value = sel
        sim.eval_combinational()
        assert model.out == 10 + sel


def test_muxreg():
    model = MuxReg(8, 4).elaborate()
    sim = SimulationTool(model)
    sim.reset()
    for i in range(4):
        model.in_[i].value = 0x20 + i
    for sel in range(4):
        model.sel.value = sel
        sim.cycle()
        assert model.out == 0x20 + sel
