"""Integration tests: the full compute tile across abstraction levels.

These exercise the paper's headline capability — mixed FL/CL/RTL
simulation of a processor + caches + accelerator tile (Figure 5a /
Figure 13's <P, C, A> configurations) under one test bench.
"""

import itertools

import pytest

from repro.accel import (
    Tile,
    mvmult_data,
    mvmult_scalar,
    mvmult_unrolled,
    mvmult_xcel,
    run_tile,
)
from repro.accel.kernels import Y_BASE
from repro.proc import assemble

ROWS, COLS = 4, 8

LEVELS = ("fl", "cl", "rtl")
ALL_CONFIGS = list(itertools.product(LEVELS, repeat=3))
# A representative subset for the heavier kernels (all 27 appear in
# the Figure 13 benchmark; tests keep runtime bounded).
SMOKE_CONFIGS = [
    ("fl", "fl", "fl"),
    ("cl", "cl", "cl"),
    ("rtl", "rtl", "rtl"),
    ("fl", "cl", "rtl"),
    ("rtl", "fl", "cl"),
    ("cl", "rtl", "fl"),
]


def _check_result(tile, expected):
    for i, value in enumerate(expected):
        assert tile.mem.read_word(Y_BASE + 4 * i) == value


@pytest.mark.parametrize("levels", SMOKE_CONFIGS,
                         ids=["-".join(c) for c in SMOKE_CONFIGS])
def test_tile_scalar_mvmult(levels):
    words = assemble(mvmult_scalar(ROWS, COLS))
    data, expected = mvmult_data(ROWS, COLS)
    tile, _ = run_tile(levels, words, data)
    _check_result(tile, expected)


@pytest.mark.parametrize("levels", SMOKE_CONFIGS,
                         ids=["-".join(c) for c in SMOKE_CONFIGS])
def test_tile_xcel_mvmult(levels):
    words = assemble(mvmult_xcel(ROWS, COLS))
    data, expected = mvmult_data(ROWS, COLS)
    tile, _ = run_tile(levels, words, data)
    _check_result(tile, expected)


@pytest.mark.parametrize("accel_level", LEVELS)
def test_tile_every_accel_level_with_cl_rest(accel_level):
    levels = ("cl", "cl", accel_level)
    words = assemble(mvmult_xcel(ROWS, COLS))
    data, expected = mvmult_data(ROWS, COLS)
    tile, _ = run_tile(levels, words, data)
    _check_result(tile, expected)


@pytest.mark.parametrize("proc_level", LEVELS)
def test_tile_every_proc_level_with_cl_rest(proc_level):
    levels = (proc_level, "cl", "cl")
    words = assemble(mvmult_unrolled(ROWS, COLS))
    data, expected = mvmult_data(ROWS, COLS)
    tile, _ = run_tile(levels, words, data)
    _check_result(tile, expected)


@pytest.mark.parametrize("cache_level", LEVELS)
def test_tile_every_cache_level_with_cl_rest(cache_level):
    levels = ("cl", cache_level, "cl")
    words = assemble(mvmult_scalar(ROWS, COLS))
    data, expected = mvmult_data(ROWS, COLS)
    tile, _ = run_tile(levels, words, data)
    _check_result(tile, expected)


def test_all_27_configs_agree_on_unrolled_result():
    """Every <P, C, A> configuration computes the same answer (small
    workload to keep runtime manageable)."""
    words = assemble(mvmult_unrolled(2, 4))
    data, expected = mvmult_data(2, 4)
    for levels in ALL_CONFIGS:
        tile, _ = run_tile(levels, words, data)
        _check_result(tile, expected)


def test_accelerator_beats_scalar_on_cl_tile():
    """Paper Section III-C: the CL tile estimates a ~2.9x speedup of
    the accelerated kernel over the unrolled scalar baseline.  Check
    the direction (accelerated runs in fewer cycles)."""
    rows, cols = 4, 16
    data, expected = mvmult_data(rows, cols)
    _, scalar_cycles = run_tile(
        ("cl", "cl", "cl"), assemble(mvmult_unrolled(rows, cols)), data)
    tile, xcel_cycles = run_tile(
        ("cl", "cl", "cl"), assemble(mvmult_xcel(rows, cols)), data)
    _check_result(tile, expected)
    assert xcel_cycles < scalar_cycles


def test_lod_scores():
    assert Tile(("fl", "fl", "fl")).lod() == 3
    assert Tile(("fl", "cl", "rtl")).lod() == 6
    assert Tile(("rtl", "rtl", "rtl")).lod() == 9


def test_caches_help_at_cl_level():
    """Second run over the same data should be faster than cold;
    verified indirectly via cache hit statistics."""
    words = assemble(mvmult_scalar(ROWS, COLS))
    data, _ = mvmult_data(ROWS, COLS)
    tile, _ = run_tile(("cl", "cl", "cl"), words, data)
    assert tile.icache.num_accesses > 0
    assert tile.icache.miss_rate() < 0.2    # tight loop: mostly hits
    assert tile.dcache.num_accesses > 0
