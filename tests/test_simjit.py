"""SimJIT tests: specialized models must be cycle-exact drop-ins.

The core property (paper Section IV): for any supported model, the
C-compiled simulation produces bit-identical port behaviour to the
interpreted simulation, cycle by cycle, under arbitrary stimulus.
"""

import random

import pytest

from repro.core import Model, SimulationTool
from repro.core.signals import InPort, OutPort
from repro.core.simjit import SimJITCL, SimJITRTL, SpecializationError
from repro.components import (
    IntPipelinedMultiplier,
    NormalQueue,
    RoundRobinArbiter,
    run_src_sink_test,
)
from repro.mem import CacheRTL, MemMsg
from repro.net import MeshNetworkStructural, NetworkTrafficHarness, RouterRTL


def _flat_ports(model, kind):
    from repro.core.simjit.specializer import _flat_ports as flat
    return flat(model, kind)


def assert_cycle_exact(factory, ncycles=200, seed=0, specializer=SimJITRTL):
    """Drive both the interpreted and specialized model with identical
    random inputs; compare every output port every cycle."""
    interp = factory().elaborate()
    jit = specializer(factory().elaborate()).specialize().elaborate()

    sim_i = SimulationTool(interp)
    sim_j = SimulationTool(jit)
    sim_i.reset()
    sim_j.reset()

    in_i = [p for p in _flat_ports(interp, InPort)
            if p.name not in ("clk", "reset")]
    in_j = [p for p in _flat_ports(jit, InPort)
            if p.name not in ("clk", "reset")]
    out_i = _flat_ports(interp, OutPort)
    out_j = _flat_ports(jit, OutPort)
    assert len(in_i) == len(in_j)
    assert len(out_i) == len(out_j)

    rng = random.Random(seed)
    for cycle in range(ncycles):
        for pi, pj in zip(in_i, in_j):
            value = rng.getrandbits(pi.nbits)
            pi.value = value
            pj.value = value
        sim_i.cycle()
        sim_j.cycle()
        for po_i, po_j in zip(out_i, out_j):
            assert int(po_i) == int(po_j), (
                f"cycle {cycle}: {po_i.name} differs "
                f"(interp {int(po_i):#x} vs jit {int(po_j):#x})"
            )


# -- component-level equivalence -------------------------------------------------


def test_register_equivalent():
    from repro.components import Register
    assert_cycle_exact(lambda: Register(8))


def test_muxreg_equivalent():
    from tests.test_core_smoke import MuxReg
    assert_cycle_exact(lambda: MuxReg(8, 4))


def test_counter_equivalent():
    from repro.components import Counter
    assert_cycle_exact(lambda: Counter(4))


def test_normal_queue_equivalent():
    assert_cycle_exact(lambda: NormalQueue(4, 16))


def test_multiplier_equivalent():
    assert_cycle_exact(lambda: IntPipelinedMultiplier(32, 4))


def test_arbiter_equivalent():
    assert_cycle_exact(lambda: RoundRobinArbiter(8))


def test_cache_rtl_equivalent():
    # Random val/rdy wiggling exercises the FSM heavily even without a
    # real memory behind it.
    assert_cycle_exact(lambda: CacheRTL(MemMsg(), MemMsg(), 4),
                       ncycles=300)


def test_router_rtl_equivalent():
    assert_cycle_exact(lambda: RouterRTL(0, 4, 64, 16, 2), ncycles=300)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_mesh_equivalent_random_seeds(seed):
    assert_cycle_exact(
        lambda: MeshNetworkStructural(RouterRTL, 4, 64, 16, 2),
        ncycles=150, seed=seed,
    )


def test_mesh_traffic_statistics_match():
    """End-to-end: identical traffic through interpreted and JIT
    meshes delivers identical packet statistics."""
    def build():
        return MeshNetworkStructural(RouterRTL, 16, 256, 32, 2).elaborate()

    interp_stats = NetworkTrafficHarness(build(), seed=7) \
        .run_uniform_random(0.3, 150)
    jit = SimJITRTL(build()).specialize().elaborate()
    jit_stats = NetworkTrafficHarness(jit, seed=7) \
        .run_uniform_random(0.3, 150)
    assert interp_stats.injected == jit_stats.injected
    assert interp_stats.ejected == jit_stats.ejected
    assert interp_stats.latencies == jit_stats.latencies


# -- composition: a JIT model inside an interpreted design -------------------------


def test_jit_queue_composes_with_interpreted_harness():
    queue = NormalQueue(2, 16).elaborate()
    jit_queue = SimJITRTL(queue).specialize()
    msgs = list(range(1, 20))
    run_src_sink_test(jit_queue, 16, msgs, msgs, src_interval=1,
                      sink_interval=2)


def test_jit_component_inside_parent_model():
    """A JIT-specialized register inside a bigger interpreted model."""
    from repro.components import Register

    jit_reg = SimJITRTL(Register(8).elaborate()).specialize()

    class Wrapper(Model):
        def __init__(s):
            s.in_ = InPort(8)
            s.out = OutPort(8)
            s.reg_ = jit_reg
            s.connect(s.in_, s.reg_.in_)
            s.connect(s.reg_.out, s.out)

    model = Wrapper().elaborate()
    sim = SimulationTool(model)
    sim.reset()
    model.in_.value = 99
    sim.cycle()
    assert model.out == 99


def test_two_jit_instances_have_independent_state():
    """Two instances of the same compiled model must not share state
    (regression: identical C source -> one shared library -> the
    instances must still get separate state structs)."""
    from repro.components import Register

    jit_a = SimJITRTL(Register(8).elaborate()).specialize()
    jit_b = SimJITRTL(Register(8).elaborate()).specialize()

    class Two(Model):
        def __init__(s):
            s.a_in = InPort(8)
            s.b_in = InPort(8)
            s.a_out = OutPort(8)
            s.b_out = OutPort(8)
            s.a = jit_a
            s.b = jit_b
            s.connect(s.a_in, s.a.in_)
            s.connect(s.b_in, s.b.in_)
            s.connect(s.a.out, s.a_out)
            s.connect(s.b.out, s.b_out)

    model = Two().elaborate()
    sim = SimulationTool(model)
    sim.reset()
    model.a_in.value = 11
    model.b_in.value = 22
    sim.cycle()
    assert model.a_out == 11
    assert model.b_out == 22


# -- error handling and overheads ----------------------------------------------------


def test_fl_model_rejected():
    from repro.mem import TestMemory
    mem = TestMemory().elaborate()
    with pytest.raises(SpecializationError, match="fl"):
        SimJITRTL(mem).specialize()


def test_cl_model_rejected_by_rtl_specializer():
    from repro.net import RouterCL
    router = RouterCL(0, 4, 64, 16, 2).elaborate()
    with pytest.raises(SpecializationError):
        SimJITRTL(router).specialize()


def test_overheads_recorded():
    from repro.components import Register
    spec = SimJITRTL(Register(8).elaborate(), cache=False)
    spec.specialize()
    for phase in ("elab", "veri", "cgen", "comp", "wrap", "simc"):
        assert phase in spec.overheads
    assert spec.overheads["comp"] > 0


def test_compile_cache_hit():
    from repro.components import Register
    first = SimJITRTL(Register(12).elaborate())
    first.specialize()
    second = SimJITRTL(Register(12).elaborate())
    second.specialize()
    assert second.overheads["cache_hit"]
    assert second.overheads["comp"] < max(0.5, first.overheads["comp"])


def test_generated_source_is_c(tmp_path):
    from repro.components import Register
    spec = SimJITRTL(Register(8).elaborate())
    spec.specialize()
    assert "run_comb_blocks" in spec.c_source
    assert "run_tick_blocks" in spec.c_source
    assert spec.lib_path.endswith(".so")
