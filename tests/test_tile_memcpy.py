"""The memcpy/DMA coprocessor inside the full tile: the accelerator
socket is generic (paper Section III-C's premise)."""

import pytest

from repro.accel import MemcpyCL, MemcpyFL, MemcpyRTL
from repro.accel.kernels import A_BASE, Y_BASE, copy_scalar, copy_xcel
from repro.accel.tile import Tile
from repro.core import SimulationTool
from repro.proc import assemble

MEMCPY_IMPLS = {"fl": MemcpyFL, "cl": MemcpyCL, "rtl": MemcpyRTL}
NWORDS = 16
DATA = list(range(100, 100 + NWORDS))


def _run(levels, source):
    tile = Tile(levels, accel_impls=MEMCPY_IMPLS).elaborate()
    tile.mem.load(0, assemble(source))
    tile.mem.load(A_BASE, DATA)
    sim = SimulationTool(tile)
    sim.reset()
    while not int(tile.proc.done):
        sim.cycle()
        assert sim.ncycles < 300_000
    got = [tile.mem.read_word(Y_BASE + 4 * i) for i in range(NWORDS)]
    return got, sim.ncycles


@pytest.mark.parametrize("levels", [
    ("fl", "fl", "fl"), ("cl", "cl", "cl"), ("rtl", "rtl", "rtl"),
    ("cl", "cl", "rtl"), ("rtl", "cl", "fl"),
], ids=lambda c: "-".join(c))
def test_dma_copy_on_tile(levels):
    got, _ = _run(levels, copy_xcel(NWORDS))
    assert got == DATA


def test_dma_beats_scalar_copy_on_cl_tile():
    _, scalar_cycles = _run(("cl", "cl", "cl"), copy_scalar(NWORDS))
    got, xcel_cycles = _run(("cl", "cl", "cl"), copy_xcel(NWORDS))
    assert got == DATA
    assert xcel_cycles < scalar_cycles


def test_scalar_copy_still_works_with_dma_socketed():
    got, _ = _run(("cl", "cl", "cl"), copy_scalar(NWORDS))
    assert got == DATA
