"""Fleet properties: determinism, sequential equivalence, shared-cache
concurrency, and failure isolation.

The fleet's contract (see :mod:`repro.fleet`) decomposes into four
testable properties:

1. **Determinism** — the serialized ``repro-fleet-v1`` report is
   byte-identical for any worker count and any result arrival order.
2. **Equivalence** — a parallel fleet run produces exactly the
   coverage bins and telemetry totals of a sequential single-process
   run of the same tasks (and of the raw co-sim harness driven by
   hand).
3. **Cache concurrency** — two processes specializing the same design
   against one shared ``SIMJIT_CACHE_DIR`` produce exactly one
   compile and one cache hit (the per-key lock in the specializer),
   one ``.so``, and no temp litter.
4. **Failure isolation** — a task whose DUT diverges mid-sweep comes
   back through the aggregator as a structured ``mismatch`` result
   (ddmin-shrunk stimulus, standalone repro, ``repro-observe-v1``
   bundles) while its sibling tasks complete normally.
"""

import json
import multiprocessing
import os
import random

from repro.fleet import (
    BenchPointTask,
    Campaign,
    FaultSweepTask,
    FleetContext,
    VerifSweepTask,
    aggregate,
    report_json,
    run_campaign,
)
from repro.verif import CoSimHarness  # noqa: F401  (re-exported check)
from repro.verif.strategies import mem_request_strategy

SEED = 7


def _small_campaign(seed=SEED):
    """Mixed campaign exercising verif, fault, and bench task kinds,
    sized for test-suite wall clock."""
    return Campaign("test-small", seed, [
        VerifSweepTask("verif/cache/a", scenario="cache", ntxns=40),
        VerifSweepTask("verif/cache/b", scenario="cache", ntxns=40,
                       dut_params={"assoc": 2}),
        VerifSweepTask("verif/mesh4", scenario="mesh", ntxns=12),
        FaultSweepTask("fault/link", npackets=40),
        BenchPointTask("bench/mesh", design="mesh_traffic",
                       params={"nrouters": 4, "rate": 0.2,
                               "ncycles": 150}),
    ])


# -- 1. determinism -----------------------------------------------------------


def test_report_byte_identical_across_worker_counts():
    """Same campaign at 1, 2, and 4 workers -> same report bytes.
    Worker count changes scheduling, process boundaries, and .so cache
    interleaving — none of which may reach the report."""
    texts = [run_campaign(_small_campaign(), nworkers=n).report_json()
             for n in (1, 2, 4)]
    assert texts[0] == texts[1] == texts[2]
    report = json.loads(texts[0])
    assert report["schema"] == "repro-fleet-v1"
    assert report["status"] == "ok"
    assert report["ntasks"] == 5


def test_report_byte_identical_under_shuffled_completion():
    """Aggregation is a pure fold keyed by task id: any permutation of
    the result list (simulating arbitrary completion order) serializes
    to the same bytes."""
    res = run_campaign(_small_campaign(), nworkers=2)
    baseline = res.report_json()
    shuffled = list(res.results)
    rng = random.Random(123)
    for _ in range(5):
        rng.shuffle(shuffled)
        again = report_json(aggregate(res.campaign, shuffled))
        assert again == baseline


# -- 2. sequential equivalence ------------------------------------------------


def _equiv_campaign(seed=SEED):
    return Campaign("test-equiv", seed, [
        VerifSweepTask("verif/cache", scenario="cache", ntxns=40),
        VerifSweepTask("verif/mesh16", scenario="mesh", ntxns=6,
                       dut_params={"nrouters": 16}),
    ])


def test_fleet_matches_sequential_run():
    """Coverage bins and telemetry totals from a 2-worker fleet
    bit-match a plain in-process loop over the same task specs."""
    fleet = run_campaign(_equiv_campaign(), nworkers=2)

    camp = _equiv_campaign()
    ctx = FleetContext(camp.seed, artifact_dir=None)
    direct = [task.execute(camp.seed, ctx) for task in camp.tasks]
    assert report_json(aggregate(camp, direct)) == fleet.report_json()


def test_fleet_coverage_matches_raw_harness():
    """The cache task's recorded coverage equals what the raw co-sim
    harness reports when driven by hand from the same derived seed —
    the fleet adds no stimulus drift."""
    camp = _equiv_campaign()
    fleet = run_campaign(camp, nworkers=2)
    task = camp.tasks[0]

    make, stimulus, run_kwargs = task._materialize(task.rng(camp.seed))
    res = make().run(stimulus, **run_kwargs)
    entry = fleet.report["tasks"]["verif/cache"]
    assert entry["coverage"] == res.coverage.to_dict()
    assert entry["payload"]["ntransactions"] == res.ntransactions()

    # Sanity: the reference stimulus really is the task's own deal.
    strat = mem_request_strategy(addr_words=64)
    srng = task.rng(camp.seed).fork("stimulus")
    assert stimulus["req"] == [strat.sample(srng)
                               for _ in range(task.ntxns)]


# -- 3. shared .so cache concurrency -----------------------------------------


def _race_child(cache_dir, barrier, queue):
    os.environ["SIMJIT_CACHE_DIR"] = cache_dir
    os.environ.pop("REPRO_SIMJIT_CACHE", None)
    from repro.components import Register
    from repro.core.simjit import SimJITRTL

    jit = SimJITRTL(Register(8).elaborate())
    barrier.wait()          # maximize overlap: race into the compile
    jit.specialize()
    queue.put(bool(jit.overheads["cache_hit"]))


def test_so_cache_single_compile_across_processes(tmp_path):
    """Two processes specializing the same design against one shared
    cache dir: the per-key lock serializes the build, so exactly one
    compiles and the other hits — never two compiles, never a torn
    read — and the cache holds one .so with no temp litter."""
    cache_dir = str(tmp_path / "socache")
    ctx = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods()
        else "spawn")
    barrier = ctx.Barrier(2)
    queue = ctx.Queue()
    procs = [ctx.Process(target=_race_child,
                         args=(cache_dir, barrier, queue))
             for _ in range(2)]
    for p in procs:
        p.start()
    hits = [queue.get(timeout=120) for _ in procs]
    for p in procs:
        p.join(timeout=120)
        assert p.exitcode == 0

    assert sorted(hits) == [False, True], hits
    entries = os.listdir(cache_dir)
    assert len([e for e in entries if e.endswith(".so")]) == 1
    assert not [e for e in entries if ".tmp" in e]


# -- 4. failure isolation -----------------------------------------------------


def _buggy_cache_scenario(rng, task):
    """Fleet scenario wrapping the injected-bug pair from the cache
    diff tests: reference RTL cache vs the same cache with a bit-flip
    on its nth response."""
    from tests.test_diff_cache import _make_buggy_pair

    strat = mem_request_strategy(addr_words=256)
    srng = rng.fork("stimulus")
    stimulus = {"req": [strat.sample(srng) for _ in range(task.ntxns)]}

    def make():
        return _make_buggy_pair(nth=8)

    return make, stimulus, {"backpressure": None, "presence": None}


_BUGGY_BUILD_SRC = """\
from tests.test_diff_cache import _make_buggy_pair


def make_cosim():
    return _make_buggy_pair(nth=8)
"""


def test_failing_task_returns_diagnostics_without_killing_fleet(tmp_path):
    """A mid-sweep divergence becomes a structured mismatch result —
    shrunk repro, observe bundles — and sibling tasks still finish."""
    artifact_dir = str(tmp_path / "artifacts")
    camp = Campaign("test-failure", SEED, [
        VerifSweepTask("verif/cache/good", scenario="cache", ntxns=30),
        VerifSweepTask("verif/cache/buggy",
                       scenario=_buggy_cache_scenario, ntxns=40,
                       max_cycles=20_000, shrink=True, shrink_runs=150,
                       observe_depth=32, build_src=_BUGGY_BUILD_SRC),
        VerifSweepTask("verif/mesh4/good", scenario="mesh", ntxns=10),
    ])
    res = run_campaign(camp, nworkers=2, artifact_dir=artifact_dir)

    report = res.report
    assert report["status"] == "failed"
    assert report["failures"] == ["verif/cache/buggy"]
    assert report["counts"] == {"ok": 2, "mismatch": 1,
                                "timeout": 0, "error": 0,
                                "poisoned": 0}
    for tid in ("verif/cache/good", "verif/mesh4/good"):
        assert report["tasks"][tid]["status"] == "ok"
        assert report["tasks"][tid]["payload"]["ntransactions"] > 0

    diag = report["tasks"]["verif/cache/buggy"]["diagnostics"]
    assert diag["channel"] == "resp"
    assert diag["dut"] == "buggy"
    # ddmin shrank the 40-transaction sweep to a handful.
    assert 1 <= diag["shrunk_ntxns"] <= 10
    assert sum(len(v) for v in diag["shrunk_stimulus"].values()) \
        == diag["shrunk_ntxns"]
    # The standalone repro landed in the artifact dir and is baked
    # into the report too.
    repro_path = os.path.join(artifact_dir, diag["repro_file"])
    assert os.path.exists(repro_path)
    assert "def make_cosim()" in diag["repro_source"]
    # Observe bundles: flight recorders were armed, so the divergence
    # exported repro-observe-v1 manifests for both DUTs.
    assert set(diag["bundles"]) == {"good", "buggy"}
    for dut, fname in diag["bundles"].items():
        assert os.path.exists(os.path.join(artifact_dir, fname))
        manifest = diag["bundle_manifests"][dut]
        assert manifest["schema"] == "repro-observe-v1"
        assert manifest["windows"]

    # The whole failure payload survives canonical serialization.
    assert json.loads(res.report_json())["failures"] \
        == ["verif/cache/buggy"]
