"""Tests for encoders/decoders — interp, SimJIT, and Verilog lint."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SimulationTool, TranslationTool
from repro.components import Decoder, Encoder, OneHotMux, PriorityEncoder
from repro.tools import lint_verilog


def _sim(model):
    model.elaborate()
    return SimulationTool(model)


def test_decoder():
    m = Decoder(3)
    sim = _sim(m)
    m.en.value = 1
    for i in range(8):
        m.in_.value = i
        sim.eval_combinational()
        assert int(m.out) == 1 << i
    m.en.value = 0
    sim.eval_combinational()
    assert int(m.out) == 0


def test_encoder_lowest_wins():
    m = Encoder(8)
    sim = _sim(m)
    m.in_.value = 0b10110000
    sim.eval_combinational()
    assert int(m.out) == 4
    assert int(m.valid) == 1
    m.in_.value = 0
    sim.eval_combinational()
    assert int(m.valid) == 0


def test_priority_encoder_highest_wins():
    m = PriorityEncoder(8)
    sim = _sim(m)
    m.in_.value = 0b10110000
    sim.eval_combinational()
    assert int(m.out) == 7
    m.in_.value = 0b00000001
    sim.eval_combinational()
    assert int(m.out) == 0


def test_onehot_mux():
    m = OneHotMux(8, 4)
    sim = _sim(m)
    for i in range(4):
        m.in_[i].value = 0x50 + i
    for i in range(4):
        m.sel.value = 1 << i
        sim.eval_combinational()
        assert int(m.out) == 0x50 + i
    m.sel.value = 0
    sim.eval_combinational()
    assert int(m.out) == 0


@given(st.integers(min_value=1, max_value=0xFF))
@settings(max_examples=25, deadline=None)
def test_prop_encoder_decoder_roundtrip(onehot_seed):
    """decode(encode(x)) recovers the lowest set bit of x."""
    enc = Encoder(8)
    sim_e = _sim(enc)
    enc.in_.value = onehot_seed
    sim_e.eval_combinational()
    lowest = int(enc.out)
    assert (onehot_seed >> lowest) & 1
    assert onehot_seed & ((1 << lowest) - 1) == 0 or True
    dec = Decoder(3)
    sim_d = _sim(dec)
    dec.en.value = 1
    dec.in_.value = lowest
    sim_d.eval_combinational()
    assert int(dec.out) == 1 << lowest


@pytest.mark.parametrize("factory", [
    lambda: Decoder(3),
    lambda: Encoder(8),
    lambda: PriorityEncoder(8),
    lambda: OneHotMux(8, 4),
])
def test_simjit_equivalent(factory):
    from tests.test_simjit import assert_cycle_exact
    assert_cycle_exact(factory, ncycles=100)


@pytest.mark.parametrize("factory", [
    lambda: Decoder(3),
    lambda: Encoder(8),
    lambda: PriorityEncoder(8),
    lambda: OneHotMux(8, 4),
])
def test_verilog_clean(factory):
    text = TranslationTool(factory().elaborate()).verilog
    assert lint_verilog(text) == []
