"""The insight plane: loaders, structural diff, perf gate, metrics.

Four properties under test:

1. **Loaders fail in one line** — missing files, truncated JSON,
   wrong schemas all raise :class:`InsightError` (and the CLIs turn
   that into exit 2, never a traceback).
2. **Diff is exact and stable** — identical reports short-circuit to
   ``identical``; perturbations surface as typed, sorted drift
   records naming the exact key (counter deltas, coverage bins,
   histogram summaries recomputed from bins, ``ok->poisoned``
   transitions).
3. **The gate is noise-aware** — a 2x slowdown fails, an unmodified
   rerun passes, and a recorded pairwise spread widens the gate
   instead of producing flaky verdicts.  Byte-determinism keys gate
   at exact equality; mismatched workload context refuses comparison.
4. **Metrics are a pure side-channel** — the OpenMetrics exposition
   is golden-pinned, the HTTP endpoint serves it live, and arming the
   server does not move a byte of the ``repro-fleet-v1`` report.
"""

import json
import os
import urllib.error
import urllib.request

import pytest

from repro.fleet import (
    BenchPointTask,
    Campaign,
    VerifSweepTask,
    run_campaign,
)
from repro.fleet.live import LiveCollector, _maxrss_bytes, worker_snapshot
from repro.insight import (
    InsightError,
    MetricsServer,
    diff_reports,
    gate_bench,
    load_bench,
    load_report,
)
from repro.insight.__main__ import main as insight_main
from repro.observe.dump import main as dump_main
from repro.telemetry.promexport import CONTENT_TYPE, render_collector

GOLDEN = os.path.join(os.path.dirname(__file__), "golden",
                      "metrics.prom")


# -- fixtures -----------------------------------------------------------------


def _fleet_report(**over):
    """A minimal but schema-complete repro-fleet-v1 dict."""
    rep = {
        "schema": "repro-fleet-v1",
        "campaign": "mini", "seed": 7, "ntasks": 2, "status": "ok",
        "counts": {"ok": 2},
        "failures": [],
        "tasks": {"verif/a": {"status": "ok", "kind": "verif"},
                  "bench/b": {"status": "ok", "kind": "bench"}},
        "coverage": {"mesh": {"hop0": 3, "hop1": 0}},
        "telemetry": {
            "counters": {"router.grants": 40, "link.flits": 12},
            "histograms": {"lat": {"bins": [[3, 2], [7, 1]],
                                   "count": 3, "mean": 13 / 3,
                                   "min": 3, "max": 7}},
        },
    }
    rep.update(over)
    return rep


def _mutate(rep, fn):
    rep = json.loads(json.dumps(rep))
    fn(rep)
    return rep


def _bench_env(slowdown=1.02, spread=0.02, **over):
    env = {
        "schema": "repro-bench-v1", "bench": "telemetry",
        "git_sha": "deadbee", "host": {"host_cpus": 4},
        "quick": True, "nrouters": 16,
        "results": [
            {"config": "baseline", "cycles_per_sec": 1.0e6,
             "slowdown_vs_baseline": 1.0},
            {"config": "disabled", "cycles_per_sec": 0.98e6,
             "slowdown_vs_baseline": slowdown,
             "pair_spread": spread},
        ],
    }
    env.update(over)
    return env


def _write(tmp_path, name, data):
    path = tmp_path / name
    path.write_text(data if isinstance(data, str)
                    else json.dumps(data, indent=2, sort_keys=True))
    return str(path)


# -- 1. loaders ---------------------------------------------------------------


def test_load_report_roundtrip(tmp_path):
    path = _write(tmp_path, "r.json", _fleet_report())
    schema, rep = load_report(path)
    assert schema == "repro-fleet-v1"
    assert rep["campaign"] == "mini"


def test_load_missing_file_is_one_line(tmp_path):
    with pytest.raises(InsightError, match="no such file"):
        load_report(str(tmp_path / "nope.json"))


def test_load_truncated_json(tmp_path):
    path = _write(tmp_path, "trunc.json",
                  json.dumps(_fleet_report())[:40])
    with pytest.raises(InsightError, match="not valid JSON"):
        load_report(path)


def test_load_unknown_schema(tmp_path):
    path = _write(tmp_path, "odd.json", {"schema": "weird-v9"})
    with pytest.raises(InsightError, match="unknown schema"):
        load_report(path)


def test_load_wrong_expected_schema(tmp_path):
    path = _write(tmp_path, "r.json", _fleet_report())
    with pytest.raises(InsightError, match="expected"):
        load_report(path, expect="repro-telemetry-v1")


def test_load_missing_required_keys(tmp_path):
    rep = _fleet_report()
    del rep["coverage"]
    path = _write(tmp_path, "r.json", rep)
    with pytest.raises(InsightError, match="missing key"):
        load_report(path)


def test_load_bench_legacy_upgrade(tmp_path):
    path = _write(tmp_path, "BENCH_old.json",
                  {"bench": "old", "git_sha": "x",
                   "results": [{"config": "a", "cycles_per_sec": 1.0}]})
    env = load_bench(path)
    assert env["schema"] == "repro-bench-v1"
    assert env["legacy"] is True
    assert env["host"] == {}


def test_load_bench_rejects_non_bench(tmp_path):
    path = _write(tmp_path, "r.json", {"something": 1})
    with pytest.raises(InsightError, match="neither"):
        load_bench(path)


# -- 2. diff ------------------------------------------------------------------


def test_diff_identical_reports():
    insight = diff_reports(_fleet_report(), _fleet_report())
    assert insight["identical"] is True
    assert insight["n_drifts"] == 0
    assert insight["sections"] == {}


def test_diff_is_stable_bytes():
    a = _fleet_report()
    b = _mutate(a, lambda r: r["telemetry"]["counters"].update(
        {"router.grants": 41}))
    one = json.dumps(diff_reports(a, b), sort_keys=True)
    two = json.dumps(diff_reports(a, b), sort_keys=True)
    assert one == two


def test_diff_counter_drift_names_the_key():
    a = _fleet_report()
    b = _mutate(a, lambda r: r["telemetry"]["counters"].update(
        {"router.grants": 43}))
    insight = diff_reports(a, b)
    assert insight["identical"] is False
    assert "counters:router.grants" in insight["drifted_keys"]
    entry = insight["sections"]["counters"]["changed"]["router.grants"]
    assert entry == {"a": 40, "b": 43, "delta": 3}


def test_diff_poisoned_transition():
    a = _fleet_report()
    b = _mutate(a, lambda r: r["tasks"]["verif/a"].update(
        {"status": "poisoned"}))
    insight = diff_reports(a, b)
    trans = insight["sections"]["tasks"]["transitions"]
    assert trans == {"verif/a": "ok->poisoned"}
    assert "tasks:verif/a" in insight["drifted_keys"]


def test_diff_coverage_bin_gain_and_loss():
    a = _fleet_report()
    b = _mutate(a, lambda r: r["coverage"]["mesh"].update(
        {"hop0": 0, "hop1": 2}))
    cov = diff_reports(a, b)["sections"]["coverage"]
    assert cov["gained_bins"] == {"mesh": ["hop1"]}
    assert cov["lost_bins"] == {"mesh": ["hop0"]}


def test_diff_histogram_summaries_recomputed_from_bins():
    a = _fleet_report()
    # Perturb the bins but leave the (stale) stored summary alone:
    # the diff must trust only the bins.
    b = _mutate(a, lambda r: r["telemetry"]["histograms"]["lat"]
                .update({"bins": [[3, 2], [7, 1], [90, 1]]}))
    hist = diff_reports(a, b)["sections"]["histograms"]["changed"]["lat"]
    assert hist["count_delta"] == 1
    assert hist["bins_added"] == [90]
    assert hist["b"]["max"] == 90


def test_diff_empty_histograms():
    a = _fleet_report()
    a["telemetry"]["histograms"] = {"lat": {"bins": []}}
    b = _mutate(a, lambda r: None)
    assert diff_reports(a, b)["identical"] is True
    c = _mutate(a, lambda r: r["telemetry"]["histograms"]["lat"]
                .update({"bins": [[1, 1]]}))
    hist = diff_reports(a, c)["sections"]["histograms"]["changed"]["lat"]
    assert hist["a"]["count"] == 0 and hist["b"]["count"] == 1


def test_diff_missing_section_falls_to_flat_path():
    a = _fleet_report()
    b = _mutate(a, lambda r: r.update({"status": "failed"}))
    insight = diff_reports(a, b)
    assert insight["sections"]["scalars"]["changed"]["status"] \
        == {"a": "ok", "b": "failed"}


def test_diff_refuses_cross_schema():
    tele = {"schema": "repro-telemetry-v1", "design": "d",
            "ncycles": 10, "counters": {}, "histograms": {},
            "leaf_totals": {}}
    with pytest.raises(InsightError, match="cannot diff"):
        diff_reports(_fleet_report(), tele)


def test_diff_telemetry_reports():
    tele = {"schema": "repro-telemetry-v1", "design": "d",
            "ncycles": 10, "counters": {"c.a": 1},
            "histograms": {}, "leaf_totals": {"a": 1}}
    other = json.loads(json.dumps(tele))
    other["counters"]["c.a"] = 2
    insight = diff_reports(tele, other)
    assert insight["drifted_keys"] == ["counters:c.a"]


# -- 3. gate ------------------------------------------------------------------


def test_gate_unmodified_rerun_passes():
    result = gate_bench(_bench_env(), _bench_env())
    assert result.passed
    assert result.failures == []


def test_gate_flags_2x_slowdown():
    result = gate_bench(_bench_env(slowdown=1.02),
                        _bench_env(slowdown=2.04))
    assert not result.passed
    fail = result.failures[0]
    assert fail["key"] == "disabled"
    assert fail["metric"] == "slowdown_vs_baseline"
    assert fail["verdict"] == "regression"


def test_gate_spread_widens_threshold():
    # 25% move, but the measurement itself recorded 10% pairwise
    # spread: threshold = max(0.10, 3 * 0.10) = 30% -> not a
    # regression.  The same move with a quiet 1% spread fails.
    noisy = gate_bench(_bench_env(slowdown=1.0, spread=0.10),
                       _bench_env(slowdown=1.25, spread=0.10))
    assert noisy.passed
    quiet = gate_bench(_bench_env(slowdown=1.0, spread=0.01),
                       _bench_env(slowdown=1.25, spread=0.01))
    assert not quiet.passed


def test_gate_exact_key_mismatch():
    base = _bench_env()
    base["results"][1]["report_sha256"] = "aaaa"
    cand = _bench_env()
    cand["results"][1]["report_sha256"] = "bbbb"
    result = gate_bench(base, cand)
    assert [c["verdict"] for c in result.failures] == ["exact-mismatch"]
    # Identical shas gate clean at exact equality.
    assert gate_bench(base, json.loads(json.dumps(base))).passed


def test_gate_context_mismatch_refuses_comparison():
    result = gate_bench(_bench_env(nrouters=16), _bench_env(nrouters=64))
    assert not result.passed
    assert result.failures[0]["verdict"] == "context-mismatch"
    assert result.failures[0]["metric"] == "nrouters"


def test_gate_rate_metrics_info_only_unless_absolute():
    base = _bench_env()
    cand = _bench_env()
    # Halve the machine-dependent rate on an entry with no ratio
    # metric: info-only by default, gated with absolute=True.
    for env in (base, cand):
        del env["results"][0]["slowdown_vs_baseline"]
    cand["results"][0]["cycles_per_sec"] = 0.5e6
    assert gate_bench(base, cand).passed
    absolute = gate_bench(base, cand, absolute=True)
    assert not absolute.passed
    assert absolute.failures[0]["metric"] == "cycles_per_sec"


def test_gate_missing_entry():
    cand = _bench_env()
    cand["results"] = cand["results"][:1]
    result = gate_bench(_bench_env(), cand)
    assert [c["verdict"] for c in result.failures] == ["missing"]


def test_gate_bench_name_mismatch():
    with pytest.raises(InsightError, match="bench mismatch"):
        gate_bench(_bench_env(), _bench_env(bench="observe"))


def test_gate_result_serializes_as_insight_dict():
    result = gate_bench(_bench_env(), _bench_env(slowdown=3.0))
    d = result.to_dict()
    assert d["schema"] == "repro-insight-v1"
    assert d["kind"] == "gate"
    assert d["passed"] is False
    assert "disabled:slowdown_vs_baseline" in d["sections"]["failures"]
    assert "| disabled |" in result.render_markdown()


# -- 4. RSS normalization -----------------------------------------------------


def test_maxrss_platform_units():
    # Linux getrusage reports KiB; macOS reports bytes.
    import sys
    assert _maxrss_bytes(2048, platform="linux") == 2048 * 1024
    assert _maxrss_bytes(2048, platform="darwin") == 2048
    # The default resolves to the running platform.
    assert _maxrss_bytes(2048) == _maxrss_bytes(
        2048, platform=sys.platform)


def test_worker_snapshot_normalizes_rss(monkeypatch):
    """Fake the resource module's answer: a 100 MiB peak reported in
    the platform unit must come out as 100 MiB of bytes either way."""
    import resource

    class FakeUsage:
        ru_utime = 1.0
        ru_stime = 0.5
        ru_maxrss = 102400 if os.sys.platform != "darwin" \
            else 104857600

    monkeypatch.setattr(resource, "getrusage",
                        lambda who: FakeUsage())
    snap = worker_snapshot(3, 1, 500, counters={"c": 2})
    assert snap["rss_bytes"] == 100 * 1024 * 1024
    assert snap["cpu_seconds"] == 1.5
    assert snap["ts"] > 0
    assert "rss_kb" not in snap


# -- 5. OpenMetrics exposition ------------------------------------------------


def _golden_collector():
    """Deterministic collector state for the golden exposition file."""
    c = LiveCollector(ntasks=5)
    c.on_message(("metrics", 101, {
        "tasks_done": 2, "tasks_failed": 0, "cycles": 1500,
        "rss_bytes": 64 * 1024 * 1024, "cpu_seconds": 1.25,
        "counters": {"router.xbar.grants": 40,
                     'link"up\\down".flits': 7},
        "ts": 1_000_000}))
    c.on_message(("metrics", 102, {
        "tasks_done": 2, "tasks_failed": 1, "cycles": 500,
        "rss_bytes": 32 * 1024 * 1024, "cpu_seconds": 0.75,
        "counters": {"router.xbar.grants": 10},
        "ts": 2_000_000}))
    c.tasks_done, c.tasks_failed = 4, 1
    c.retries, c.respawns = 2, 1
    c.quarantined = ["fault/bad"]
    return c


def test_metrics_golden_file():
    text = render_collector(_golden_collector(), elapsed=2.0)
    if os.environ.get("UPDATE_GOLDEN"):
        with open(GOLDEN, "w") as handle:
            handle.write(text)
    with open(GOLDEN) as handle:
        assert text == handle.read()


def test_metrics_exposition_shape():
    text = render_collector(_golden_collector(), elapsed=2.0)
    assert text.endswith("# EOF\n")
    assert "# TYPE repro_fleet_tasks_done counter" in text
    assert "repro_fleet_tasks_done_total 4" in text
    assert "repro_fleet_cycles_per_second 1000" in text
    assert 'repro_fleet_worker_rss_bytes{pid="101"} 67108864' in text
    # Label values escape quotes and backslashes.
    assert r'{name="link\"up\\down\".flits"} 7' in text


def test_metrics_server_scrape():
    c = _golden_collector()
    with MetricsServer(lambda: render_collector(c, elapsed=2.0),
                       port=0) as srv:
        assert srv.port > 0
        with urllib.request.urlopen(srv.url) as resp:
            assert resp.headers["Content-Type"] == CONTENT_TYPE
            body = resp.read().decode()
        assert body == render_collector(c, elapsed=2.0)
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(
                f"http://127.0.0.1:{srv.port}/other")
        assert err.value.code == 404


def test_metrics_server_render_error_is_500():
    def boom():
        raise RuntimeError("collector gone")
    with MetricsServer(boom, port=0) as srv:
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(srv.url)
        assert err.value.code == 500
    # And the server came down clean (stop() is idempotent).
    srv.stop()


# -- 6. report bytes are sacred -----------------------------------------------


def _mini_campaign():
    return Campaign("insight-mini", 7, [
        VerifSweepTask("verif/cache", scenario="cache", ntxns=12),
        BenchPointTask("bench/mesh", design="mesh_traffic",
                       params={"nrouters": 4, "rate": 0.2,
                               "ncycles": 60}),
    ])


def test_metrics_server_does_not_touch_report_bytes():
    plain = run_campaign(_mini_campaign(), nworkers=2).report_json()
    armed = run_campaign(_mini_campaign(), nworkers=2, metrics_port=0)
    assert armed.stats["metrics_port"] > 0
    assert armed.report_json() == plain


# -- 7. CLI exit codes --------------------------------------------------------


def test_cli_diff_bit_exact_and_drift(tmp_path, capsys):
    a = _write(tmp_path, "a.json", _fleet_report())
    b = _write(tmp_path, "b.json", _fleet_report())
    assert insight_main(["diff", a, b]) == 0
    assert "bit-exact" in capsys.readouterr().out

    drifted = _mutate(_fleet_report(),
                      lambda r: r["telemetry"]["counters"].update(
                          {"router.grants": 99}))
    c = _write(tmp_path, "c.json", drifted)
    assert insight_main(["diff", a, c]) == 1
    out = capsys.readouterr().out
    assert "counters:router.grants" in out


def test_cli_diff_bad_inputs_exit_2(tmp_path, capsys):
    a = _write(tmp_path, "a.json", _fleet_report())
    assert insight_main(["diff", a, str(tmp_path / "no.json")]) == 2
    assert "no such file" in capsys.readouterr().err

    trunc = _write(tmp_path, "t.json", "{\"schema\": \"repro-fl")
    assert insight_main(["diff", a, trunc]) == 2
    assert "not valid JSON" in capsys.readouterr().err

    wrong = _write(tmp_path, "w.json", {"schema": "nope-v0"})
    assert insight_main(["diff", a, wrong]) == 2
    assert "unknown schema" in capsys.readouterr().err


def test_cli_gate_pass_fail_and_artifacts(tmp_path, capsys):
    base = _write(tmp_path, "BENCH_telemetry.json", _bench_env())
    good = _write(tmp_path, "good.json", _bench_env(slowdown=1.03))
    bad = _write(tmp_path, "bad.json", _bench_env(slowdown=2.2))
    html = str(tmp_path / "gate.html")
    assert insight_main(["gate", good, "--baseline", base]) == 0
    assert "gate PASS" in capsys.readouterr().out
    assert insight_main(["gate", bad, "--baseline", base,
                         "--html", html]) == 1
    out = capsys.readouterr().out
    assert "gate FAIL" in out and "slowdown_vs_baseline" in out
    assert "<html" in open(html).read()


def test_cli_gate_resolves_committed_baseline(tmp_path, capsys):
    bdir = tmp_path / "baselines"
    bdir.mkdir()
    _write(bdir, "BENCH_telemetry.json", _bench_env())
    cand = _write(tmp_path, "BENCH_telemetry.json",
                  _bench_env(slowdown=1.01))
    assert insight_main(["gate", cand,
                         "--baseline-dir", str(bdir)]) == 0
    capsys.readouterr()
    orphan = _write(tmp_path, "BENCH_observe.json",
                    _bench_env(bench="observe"))
    assert insight_main(["gate", orphan,
                         "--baseline-dir", str(bdir)]) == 2
    assert "no committed baseline" in capsys.readouterr().err


def test_cli_report_renders_fleet_summary(tmp_path, capsys):
    path = _write(tmp_path, "r.json", _fleet_report())
    html = str(tmp_path / "r.html")
    assert insight_main(["report", path, "--html", html]) == 0
    page = open(html).read()
    assert "repro-fleet-v1" in page and "mini" in page


def test_observe_dump_cli_error_paths(tmp_path, capsys):
    assert dump_main([str(tmp_path / "no.json")]) == 2
    assert "error:" in capsys.readouterr().err

    trunc = tmp_path / "t.json"
    trunc.write_text('{"schema": "repro-obse')
    assert dump_main([str(trunc)]) == 2
    assert "error:" in capsys.readouterr().err

    wrong = tmp_path / "w.json"
    wrong.write_text(json.dumps({"schema": "not-observe"}))
    assert dump_main([str(wrong)]) == 2
    assert "error:" in capsys.readouterr().err

    # Right schema stamp, mangled body: one line, never a traceback.
    mangled = tmp_path / "m.json"
    mangled.write_text(json.dumps(
        {"schema": "repro-observe-v1", "design": "d", "reason": "r",
         "cycle": 5, "windows": [{"signals": []}]}))
    assert dump_main([str(mangled)]) == 2
    err = capsys.readouterr().err
    assert "malformed bundle" in err
