"""Resilience subsystem tests: fault injection, self-healing fallbacks,
watchdog diagnostics, and the CRC-protected resilient link.

The two load-bearing properties:

- **Substrate portability** — the same seed and the same fault set
  produce bit-identical telemetry totals whether the design runs on
  the event-driven simulator, the static schedule, or SimJIT (fault
  decisions are pure functions of the cycle index).
- **Exactly-once delivery** — the resilient link delivers every
  injected-fault packet exactly once, in order, at all three modeling
  levels, verified with the differential co-simulation harness.
"""

import json
import warnings

import pytest

from repro import (
    InPort,
    Model,
    OutPort,
    ResilienceWarning,
    SEUInjector,
    SimulationTool,
    StuckAtFault,
    Watchdog,
    WatchdogTimeout,
    Wire,
    specialize_or_fallback,
)
from repro.core import SimulationError
from repro.core.simjit import SimJITRTL
from repro.net import ResilientLink, RouterRTL, UnreliableChannel, crc8
from repro.net.resilient_link import pack_ack, pack_frame
from repro.resilience import (
    KINDS,
    LinkFaultInjector,
    fault_schedule,
    resolve_path,
    warn_resilience,
)
from repro.verif import RNG, CoSimHarness, DutAdapter, backpressure_pattern


# -- warning taxonomy ----------------------------------------------------------------


def test_resilience_warning_fields():
    with pytest.warns(ResilienceWarning) as rec:
        warn_resilience("down we go", kind="sched-fallback",
                        component="top", fallback="event", detail="boom")
    assert len(rec) == 1
    w = rec[0].message
    assert w.kind == "sched-fallback"
    assert w.component == "top" and w.fallback == "event"
    assert w.detail == "boom"
    assert str(w) == "down we go"


def test_resilience_warning_rejects_unknown_kind():
    with pytest.raises(ValueError, match="kind"):
        warn_resilience("x", kind="not-a-kind")
    assert set(KINDS) == {
        "static-noop", "sched-fallback", "kernel-fallback",
        "simjit-fallback", "instrument-fallback"}


# -- fault schedules and path resolution ---------------------------------------------


def test_fault_schedule_deterministic_and_bursty():
    a = fault_schedule(0.25, seed=9)
    b = fault_schedule(0.25, seed=9)
    fires = [c for c in range(2000) if a(c)]
    assert fires == [c for c in range(2000) if b(c)]
    # Probability is roughly honored (pure crc32 mix, not RNG draws).
    assert 0.15 < len(fires) / 2000 < 0.35
    # A different seed gives a different schedule.
    assert fires != [c for c in range(2000) if fault_schedule(0.25, 10)(c)]
    # burst=4 makes decisions per 4-cycle window: within any window the
    # decision is constant.
    w = fault_schedule(0.3, seed=3, burst=4)
    for base in range(0, 400, 4):
        assert len({w(base + i) for i in range(4)}) == 1


def test_resolve_path_walks_lists_and_submodels():
    net = RouterRTL(0, 4, 64, 16, 2).elaborate()
    owner, attr, target, engine, indices = resolve_path(net, "priority[1]")
    assert owner is net and attr == "priority" and indices == (1,)
    assert target is net.priority[1] and engine is None
    with pytest.raises(AttributeError, match="no attribute"):
        resolve_path(net, "nonexistent.thing")
    with pytest.raises(ValueError, match="bad path token"):
        resolve_path(net, "pri ority")


def test_resolve_path_drops_through_jit_wrapper():
    jit = SimJITRTL(RouterRTL(0, 4, 64, 16, 2).elaborate()).specialize()
    jit.elaborate()
    owner, attr, target, engine, _ = resolve_path(jit, "priority[2]")
    assert engine is jit.jit_engine
    assert target is engine.model.priority[2]


# -- injector units ------------------------------------------------------------------


class _Pipe(Model):
    """Three-deep counter pipeline: a fault on r1 is visible on out two
    cycles later, so expected values are computable by hand."""

    def __init__(s):
        s.out = OutPort(8)
        s.r1 = Wire(8)
        s.r2 = Wire(8)

        @s.tick_rtl
        def seq():
            if s.reset:
                s.r1.next = 0
                s.r2.next = 0
                s.out.next = 0
            else:
                s.r1.next = (s.r1 + 1) & 0xFF
                s.r2.next = s.r1.value
                s.out.next = s.r2.value


def _run_pipe(install=None, ncycles=12):
    m = _Pipe().elaborate()
    sim = SimulationTool(m)
    if install is not None:
        install(sim)
    sim.reset()
    outs = []
    for _ in range(ncycles):
        sim.cycle()
        outs.append(int(m.out))
    return outs, m, sim


def test_seu_flips_exactly_on_requested_cycles():
    clean, _, _ = _run_pipe()
    inj = SEUInjector("r1", cycles=[4], bit=0)
    faulty, _, _ = _run_pipe(inj.install)
    assert inj.n_fires == 1
    assert inj.log and inj.log[0][0] == 4 and "bit 0" in inj.log[0][1]
    diffs = [i for i, (c, f) in enumerate(zip(clean, faulty)) if c != f]
    # The flip lands in the counter register itself: the counter keeps
    # incrementing from the flipped value, so once the fault reaches out
    # the divergence is permanent with a constant +-1 offset.
    assert diffs and diffs == list(range(diffs[0], len(clean)))
    offsets = {faulty[i] - clean[i] for i in diffs}
    assert offsets == {1} or offsets == {-1}


def test_seu_probability_mode_is_seed_deterministic():
    def fires(seed):
        inj = SEUInjector("r1", p=0.3, seed=seed)
        _run_pipe(inj.install, ncycles=60)
        return inj.n_fires, tuple(inj.log)

    assert fires(11) == fires(11)
    assert fires(11) != fires(12)
    # An RNG seed lands on the fork tree, equally reproducibly.
    assert fires(RNG(5)) == fires(RNG(5))


def test_seu_requires_exactly_one_trigger():
    with pytest.raises(ValueError, match="exactly one"):
        SEUInjector("r1")
    with pytest.raises(ValueError, match="exactly one"):
        SEUInjector("r1", p=0.1, cycles=[1])


def test_stuck_at_holds_window_then_releases():
    clean, _, _ = _run_pipe(ncycles=16)
    inj = StuckAtFault("r1", value=0x7F, from_cycle=4, until=7)
    faulty, _, _ = _run_pipe(inj.install, ncycles=16)
    assert inj.n_fires == 3
    # The three forced pre-edge values march through r2 to out as three
    # consecutive 0x7F samples...
    window = [i for i, v in enumerate(faulty) if v == 0x7F]
    assert len(window) == 3
    assert window == list(range(window[0], window[0] + 3))
    # ...and after release the pipeline recovers: r1 resumes counting
    # from the forced value (0x7F + 1 = 0x80 onward).
    after = faulty[window[-1] + 1:]
    assert after == list(range(0x80, 0x80 + len(after)))
    assert clean[window[-1] + 1:] != after


# -- substrate equivalence (the satellite-4 property) --------------------------------


def _faulted_router_counters(jit, sched):
    m = RouterRTL(0, 4, 64, 16, 2).elaborate()
    if jit:
        m = SimJITRTL(m).specialize()
        m.elaborate()
    sim = SimulationTool(m, sched=sched)
    seu = SEUInjector("priority[2]", p=0.05, seed=5).install(sim)
    stuck = StuckAtFault("hold_val[1]", bit=0, value=1,
                         from_cycle=10, until=40).install(sim)
    sim.reset()
    for o in range(5):
        m.out[o].rdy.value = 1
    for cyc in range(200):
        m.in_[0].val.value = 1 if cyc % 3 else 0
        m.in_[0].msg.value = (
            ((cyc * 7) % 4) << 14 | (cyc % 64) << 8 | (cyc & 0xFF))
        sim.eval_combinational()
        sim.cycle()
    totals = {k: c.value for k, c in m._all_counters.items()}
    return totals, seu.n_fires, stuck.n_fires


def test_injected_faults_identical_across_substrates():
    """Same seed + same faults -> bit-identical telemetry totals on
    event, static, auto (kernel-capable), and SimJIT substrates."""
    ref = _faulted_router_counters(False, "event")
    assert sum(ref[0].values()) > 0 and ref[1] > 0 and ref[2] > 0
    for jit, sched in [(False, "static"), (False, "auto"), (True, "auto")]:
        assert _faulted_router_counters(jit, sched) == ref, (jit, sched)


def test_seu_reaches_compiled_cl_state():
    """A flip into a CL model's flat-int state list lands on the same
    element whether the state lives in Python or in the compiled
    instance (raw_set_state element indexing)."""
    from repro.core.simjit import SimJITCL
    from repro.net import RouterCL

    def run(jit):
        m = RouterCL(0, 4, 64, 16, 2)
        m.elaborate()
        if jit:
            m = SimJITCL(m).specialize()
            m.elaborate()
        sim = SimulationTool(m)
        inj = SEUInjector("priority[1]", cycles=[6, 9], bit=0).install(sim)
        sim.reset()
        for o in range(5):
            m.out[o].rdy.value = 1
        for cyc in range(30):
            # Two competing requesters for the same output: arbitration
            # priority decides, so a priority flip changes the counters.
            for i in (0, 1):
                m.in_[i].val.value = 1
                m.in_[i].msg.value = 2 << 14 | (cyc % 64) << 8 | i
            sim.eval_combinational()
            sim.cycle()
        return {k: c.value for k, c in m._all_counters.items()}, inj.n_fires

    plain = run(False)
    jitted = run(True)
    assert plain == jitted and plain[1] == 2


# -- self-healing fallbacks ----------------------------------------------------------


class _Counter(Model):
    def __init__(s):
        s.en = InPort(1)
        s.out = OutPort(8)

        @s.tick_rtl
        def seq():
            if s.reset:
                s.out.next = 0
            elif s.en:
                s.out.next = s.out + 1


def _drive_counter(sim, m, n=20):
    sim.reset()
    m.en.value = 1
    sim.run(n)
    return int(m.out)


def test_static_schedule_failure_degrades_to_event(monkeypatch):
    from repro.core import simulation as simulation_mod

    def boom(infos):
        raise RuntimeError("synthetic scheduler defect")

    monkeypatch.setattr(simulation_mod, "build_schedule", boom)
    m = _Counter().elaborate()
    with pytest.warns(ResilienceWarning) as rec:
        sim = SimulationTool(m, sched="static")
    kinds = [w.message.kind for w in rec]
    assert kinds.count("sched-fallback") == 1
    assert sim.sched_info()["mode"] == "event"
    assert any("synthetic scheduler defect" in r
               for r in sim.sched_info()["kernel_refused"])
    # The degraded simulator still computes the right answer.
    assert _drive_counter(sim, m) == 20


def test_kernel_failure_degrades_to_interpreted(monkeypatch):
    from repro.core import simulation as simulation_mod

    def boom(sim):
        raise RuntimeError("synthetic codegen defect")

    monkeypatch.setattr(simulation_mod, "generate_kernel", boom)
    m = _Counter().elaborate()
    with pytest.warns(ResilienceWarning) as rec:
        sim = SimulationTool(m, sched="static")
    kinds = [w.message.kind for w in rec]
    assert kinds.count("kernel-fallback") == 1
    assert sim._kernel is None
    assert sim.sched_info()["mode"] == "static"
    assert _drive_counter(sim, m) == 20


def test_static_noop_warning_is_resilience_warning():
    class _Opaque(Model):
        """Comb block whose write set defeats static analysis, leaving
        nothing to schedule (same shape as test_scheduling's _Opaque)."""

        def __init__(s):
            s.in_ = InPort(8)
            s.out = OutPort(8)

            @s.combinational
            def logic():
                s.helper()

        def helper(s):
            s.out.value = s.in_.value + 1

    m = _Opaque().elaborate()
    with pytest.warns(ResilienceWarning) as rec:
        SimulationTool(m, sched="static")
    assert [w.message.kind for w in rec] == ["static-noop"]
    assert "no effect" in str(rec[0].message)
    assert rec[0].message.fallback == "event"


def test_specialize_or_fallback_survives_gcc_failure():
    def run(m):
        sim = SimulationTool(m)
        sim.reset()
        for o in range(5):
            m.out[o].rdy.value = 1
        m.in_[0].val.value = 1
        m.in_[0].msg.value = 1 << 14
        sim.run(20)
        return {k: c.value for k, c in m._all_counters.items()}

    with pytest.warns(ResilienceWarning) as rec:
        m = specialize_or_fallback(
            RouterRTL(0, 4, 64, 16, 2).elaborate(), opt="-Oinvalid")
    assert [w.message.kind for w in rec] == ["simjit-fallback"]
    assert rec[0].message.fallback == "interpreted"
    # The fallback is the *original* interpreted model, fully usable.
    assert not hasattr(m, "jit_engine")
    plain = run(RouterRTL(0, 4, 64, 16, 2).elaborate())
    assert run(m) == plain and sum(plain.values()) > 0


def test_specialize_or_fallback_passthrough_on_success():
    with warnings.catch_warnings():
        warnings.simplefilter("error", ResilienceWarning)
        m = specialize_or_fallback(RouterRTL(0, 4, 64, 16, 2).elaborate())
    assert hasattr(m, "jit_engine")


# -- watchdog + oscillation diagnostics ----------------------------------------------


def test_watchdog_cycle_budget(tmp_path):
    m = _Counter().elaborate()
    sim = SimulationTool(m)
    sim.reset()
    m.en.value = 1
    wd = Watchdog(sim, max_cycles=100, check_every=16)
    with pytest.raises(WatchdogTimeout) as exc:
        wd.run(10_000)
    diag = exc.value.diagnostics
    assert diag["cycle"] >= 100 and diag["cycle"] < 10_000
    assert diag["sched"]["mode"] in ("event", "static")
    path = tmp_path / "sub" / "watchdog.json"
    wd.write_report(path)
    with open(path) as f:
        report = json.load(f)
    assert report["cycle"] == diag["cycle"]
    assert "line_trace" in report and "elapsed_seconds" in report


def test_watchdog_wall_clock_budget():
    m = _Counter().elaborate()
    sim = SimulationTool(m)
    sim.reset()
    wd = Watchdog(sim, max_wall_seconds=0.0, check_every=8)
    with pytest.raises(WatchdogTimeout, match="wall clock"):
        wd.run(1000)


def test_watchdog_completes_within_budget():
    m = _Counter().elaborate()
    sim = SimulationTool(m)
    sim.reset()
    m.en.value = 1
    assert Watchdog(sim, max_cycles=500).run(50) == 50
    assert int(m.out) == 50


def test_comb_loop_diagnostic_names_oscillating_signals():
    class _Osc(Model):
        def __init__(s):
            s.a = Wire(1)
            s.b = Wire(1)

            @s.combinational
            def follow():
                s.b.value = s.a.uint()

            @s.combinational
            def invert():
                s.a.value = 1 - s.b.uint()

    # The initial settle at construction already trips the budget.
    with pytest.raises(SimulationError, match="loop") as exc:
        SimulationTool(_Osc().elaborate())
    msg = str(exc.value)
    assert "oscillating signals" in msg
    assert "a (" in msg and "b (" in msg
    assert "hottest blocks" in msg
    assert "invert" in msg or "follow" in msg


# -- CRC and framing -----------------------------------------------------------------


def test_crc8_detects_all_single_and_double_bit_errors():
    # CRC-8 poly 0x07 has Hamming distance 4 up to 119 data bits: any
    # 1- or 2-bit flip in the frame body must change the crc, which is
    # exactly the corruption class LinkFaultInjector produces.
    nbits = 20
    base = 0x5A5A5
    good = crc8(base, nbits)
    for b1 in range(nbits):
        assert crc8(base ^ (1 << b1), nbits) != good
        for b2 in range(b1 + 1, nbits):
            assert crc8(base ^ (1 << b1) ^ (1 << b2), nbits) != good


def test_frame_pack_layout():
    seq_bits, payload_bits = 4, 16
    frame = pack_frame(0x9, 0xBEEF, seq_bits, payload_bits)
    body = frame & ((1 << (seq_bits + payload_bits)) - 1)
    assert body == (0x9 << 16) | 0xBEEF
    assert frame >> (seq_bits + payload_bits) == crc8(body, 20)
    ack = pack_ack(1, 0x9, seq_bits)
    assert ack & ((1 << (seq_bits + 1)) - 1) == (1 << seq_bits) | 0x9


# -- resilient link: fault-free and exactly-once under faults ------------------------


LEVELS = ("fl", "cl", "rtl")


def _link_dut(name, level, **kwargs):
    link = ResilientLink(payload_nbits=16, level=level, **kwargs)
    return DutAdapter(name, link,
                      drives={"in": link.in_},
                      captures={"out": link.out})


def _payloads(seed, n):
    rng = RNG(seed).fork("payloads")
    return [rng.getrandbits(16) for _ in range(n)]


@pytest.mark.parametrize("level", LEVELS)
def test_link_delivers_fault_free(level):
    link = ResilientLink(payload_nbits=16, level=level).elaborate()
    sim = SimulationTool(link)
    sim.reset()
    sent = _payloads(3, 20)
    got = []
    it = iter(sent)
    cur = next(it)
    link.out.rdy.value = 1
    for _ in range(400):
        link.in_.val.value = 1 if cur is not None else 0
        if cur is not None:
            link.in_.msg.value = cur
        sim.eval_combinational()
        if cur is not None and int(link.in_.rdy):
            cur = next(it, None)
        if int(link.out.val):
            got.append(int(link.out.msg))
        sim.cycle()
        if cur is None and link.is_idle():
            break
    assert got == sent
    assert link.sender.ctr_retries.value == 0
    assert link.receiver.ctr_delivered.value == len(sent)


def _run_fault_sweep(seed, npackets, drop, corrupt, stall):
    duts = [_link_dut(level, level) for level in LEVELS]
    for dut in duts:
        LinkFaultInjector("fwd", drop=drop, corrupt=corrupt,
                          stall=stall, seed=seed).install(dut.sim)
        LinkFaultInjector("rev", drop=drop, corrupt=corrupt,
                          stall=stall, seed=seed + 1).install(dut.sim)
    harness = CoSimHarness(duts, compare="cycle_tolerant")
    sent = _payloads(seed, npackets)
    res = harness.run(
        {"in": sent},
        backpressure=backpressure_pattern("random", 0.2, seed=seed),
        max_cycles=60_000)
    for level in LEVELS:
        link = next(d.model for d in duts if d.name == level)
        # Exactly once, in order, no losses tolerated.
        got = [msg for _, msg in res.transfers[level]["out"]]
        assert got == sent, (level, len(got), len(sent))
        assert link.sender.ctr_giveups.value == 0
        assert link.receiver.ctr_delivered.value == npackets
        # The sweep actually exercised the machinery.
        assert (link.fwd.ctr_dropped.value
                + link.fwd.ctr_corrupted.value
                + link.rev.ctr_dropped.value) > 0
        assert link.sender.ctr_retries.value > 0
    return duts


def test_link_exactly_once_under_fault_sweep():
    """Every injected-fault packet is delivered exactly once at FL, CL,
    and RTL — >=1000 packets across three fault mixes, diffed by the
    co-simulation harness."""
    total = 0
    for seed, n, faults in [
        (101, 340, dict(drop=0.08, corrupt=0.0, stall=0.10)),
        (202, 340, dict(drop=0.0, corrupt=0.08, stall=0.05)),
        (303, 340, dict(drop=0.05, corrupt=0.05, stall=0.08)),
    ]:
        _run_fault_sweep(seed, n, **faults)
        total += n * len(LEVELS)
    assert total >= 1000


def test_link_gives_up_on_dead_channel():
    link = ResilientLink(payload_nbits=16, level="rtl",
                         max_retries=3).elaborate()
    sim = SimulationTool(link)
    inj = LinkFaultInjector("fwd", drop=1.0, seed=0).install(sim)
    sim.reset()
    link.out.rdy.value = 1
    link.in_.val.value = 1
    link.in_.msg.value = 0x1234
    sim.eval_combinational()
    for _ in range(400):
        sim.cycle()
        sim.eval_combinational()
        if int(link.sender.ctr_giveups.value) and int(link.in_.rdy):
            break
    assert link.sender.ctr_giveups.value == 1
    assert link.receiver.ctr_delivered.value == 0
    assert inj.n_drop > 0
    # The sender returned to IDLE: the link is live for the next payload.
    assert int(link.in_.rdy) == 1


def test_link_fault_injector_rejects_non_channel():
    link = ResilientLink(payload_nbits=16, level="rtl").elaborate()
    sim = SimulationTool(link)
    with pytest.raises(TypeError, match="UnreliableChannel"):
        LinkFaultInjector("sender", drop=0.5).install(sim)


def test_unreliable_channel_counts_fault_hits():
    chan = UnreliableChannel(8).elaborate()
    sim = SimulationTool(chan)
    sim.reset()
    chan.out.rdy.value = 1
    chan.in_.val.value = 1
    chan.in_.msg.value = 0xAB
    chan.f_drop.value = 1
    sim.eval_combinational()
    sim.cycle()
    assert chan.ctr_dropped.value == 1 and chan.is_empty()
    chan.f_drop.value = 0
    chan.f_corrupt.value = 0x03
    sim.eval_combinational()
    sim.cycle()
    assert chan.ctr_corrupted.value == 1
    sim.eval_combinational()
    assert int(chan.out.msg) == 0xAB ^ 0x03
