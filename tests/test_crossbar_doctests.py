"""Crossbar tests plus doctest execution for documented modules."""

import doctest
import random

import pytest

from repro import SimulationTool, TranslationTool
from repro.components import Crossbar
from repro.tools import lint_verilog


def test_crossbar_routes_all_permutations():
    m = Crossbar(8, 4).elaborate()
    sim = SimulationTool(m)
    for i in range(4):
        m.in_[i].value = 0xA0 + i
    rng = random.Random(3)
    for _ in range(20):
        sels = [rng.randrange(4) for _ in range(4)]
        for j, sel in enumerate(sels):
            m.sel[j].value = sel
        sim.eval_combinational()
        for j, sel in enumerate(sels):
            assert int(m.out[j]) == 0xA0 + sel


def test_crossbar_multicast():
    m = Crossbar(8, 4).elaborate()
    sim = SimulationTool(m)
    m.in_[2].value = 0x77
    for j in range(4):
        m.sel[j].value = 2
    sim.eval_combinational()
    assert all(int(m.out[j]) == 0x77 for j in range(4))


def test_crossbar_simjit_equivalent():
    from tests.test_simjit import assert_cycle_exact
    assert_cycle_exact(lambda: Crossbar(8, 4), ncycles=100)


def test_crossbar_translates_clean():
    text = TranslationTool(Crossbar(8, 4).elaborate()).verilog
    assert lint_verilog(text) == []


# -- doctests ------------------------------------------------------------------


@pytest.mark.parametrize("module_name", [
    "repro.core.bits",
    "repro.core.bitstruct",
])
def test_module_doctests(module_name):
    import importlib
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0
