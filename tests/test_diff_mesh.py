"""Differential sweeps for the mesh network.

Networks only promise *partial* order — packets between one
(src, dest) pair stay ordered, packets of different pairs may overtake
each other — so the cross-abstraction comparison uses
``group_key=(src, dest)``.  The substrate comparison (event vs static
vs SimJIT of the *same* RTL mesh) is still fully cycle-exact.

Also carries the regression tests for the round-robin grant-holding
bug this harness originally found in both routers: a stalled output
(val high, rdy low) used to re-arbitrate and swap its offered payload
mid-stall, violating val/rdy payload stability.
"""

from repro.net import NetMsg
from repro.verif import (
    RNG,
    CoSimHarness,
    backpressure_pattern,
    net_message_strategy,
    presence_pattern,
)
from repro.verif.duts import make_mesh_dut

NROUTERS = 4
PER_PORT = 250          # 4 ports x 250 = 1000 messages per run
_MSG = NetMsg(NROUTERS, nmsgs=256, data_nbits=16)


def _messages(seed, per_port=PER_PORT):
    rng = RNG(seed)
    stimulus = {}
    for src in range(NROUTERS):
        port_rng = rng.fork(f"port{src}")
        strat = net_message_strategy(_MSG, src, NROUTERS)
        stimulus[f"in{src}"] = [
            strat.sample(port_rng) for _ in range(per_port)]
    return stimulus


def _src_dest_key():
    src_lo, src_hi = _MSG.field_slice("src")
    dest_lo, dest_hi = _MSG.field_slice("dest")

    def key(msg):
        return ((msg >> src_lo) & ((1 << (src_hi - src_lo)) - 1),
                (msg >> dest_lo) & ((1 << (dest_hi - dest_lo)) - 1))
    return key


def test_mesh_substrates_cycle_exact():
    """RTL mesh on event / static / SimJIT backends: bit-and-cycle
    identical over 1000 random packets with bursty sinks."""
    harness = CoSimHarness(
        [make_mesh_dut("event", "rtl", sched="event"),
         make_mesh_dut("static", "rtl", sched="static"),
         make_mesh_dut("jit", "rtl", jit=True)],
        compare="cycle_exact")
    res = harness.run(
        _messages(500),
        backpressure=backpressure_pattern("bursty", burst=3),
        presence=presence_pattern("random", p=0.8, seed=5))
    assert res.ntransactions() == NROUTERS * PER_PORT
    assert len(set(res.ncycles.values())) == 1


def test_mesh_levels_grouped_cycle_tolerant():
    """RTL mesh vs CL mesh vs ideal-crossbar FL network: per
    (src, dest) pair, all three deliver the same packet sequences."""
    harness = CoSimHarness(
        [make_mesh_dut("rtl", "rtl"),
         make_mesh_dut("cl", "cl"),
         make_mesh_dut("fl", "fl")],
        compare="cycle_tolerant",
        group_key=_src_dest_key())
    res = harness.run(
        _messages(600),
        backpressure=backpressure_pattern("random", p=0.7, seed=6),
        presence=presence_pattern("random", p=0.75, seed=6))
    assert res.ntransactions() == NROUTERS * PER_PORT
    # Every (src, dest) pair of a 2x2 mesh should occur in 1000
    # uniform-destination packets (self-sends bin separately).
    bins = set(res.coverage.bins("net_msg"))
    pair_bins = {b for b in bins if b.startswith("pair_")}
    assert len(pair_bins) == NROUTERS * (NROUTERS - 1)
    assert "self_send" in bins


def test_mesh_payload_stability_under_stall():
    """Regression: stalled router outputs must hold their grant.

    Both RouterCL and RouterRTL used to re-arbitrate every cycle, so a
    newly-valid input closer to the round-robin pointer could replace
    the payload of an already-offered (val=1, rdy=0) packet.  The
    harness's ValRdyMonitor turns that into CoSimProtocolError; with
    ``check_protocol=True`` (the default) a clean run *is* the assert.
    """
    for router in ("cl", "rtl"):
        harness = CoSimHarness(
            [make_mesh_dut("a", router), make_mesh_dut("b", router)],
            compare="cycle_exact")
        res = harness.run(
            # Hot-spot traffic into long stalls maximizes competing
            # inputs per output while offers are pending.
            _messages(700, per_port=60),
            backpressure=backpressure_pattern("bursty", burst=6),
            presence=presence_pattern("always"))
        assert res.ntransactions() == NROUTERS * 60
