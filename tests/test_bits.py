"""Unit and property tests for the Bits fixed-width value type."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import Bits, bw, clog2, concat, sext, zext


# -- construction -------------------------------------------------------------


def test_basic_construction():
    b = Bits(8, 0xAB)
    assert b.nbits == 8
    assert b.uint() == 0xAB


def test_default_value_is_zero():
    assert Bits(16).uint() == 0


def test_negative_value_wraps_twos_complement():
    assert Bits(8, -1).uint() == 0xFF
    assert Bits(8, -128).uint() == 0x80


def test_out_of_range_raises():
    with pytest.raises(ValueError):
        Bits(8, 256)
    with pytest.raises(ValueError):
        Bits(8, -129)


def test_trunc_masks_instead_of_raising():
    assert Bits(8, 0x1FF, trunc=True).uint() == 0xFF


def test_zero_width_raises():
    with pytest.raises(ValueError):
        Bits(0)


def test_immutability():
    b = Bits(8, 1)
    with pytest.raises(AttributeError):
        b.nbits = 4


# -- signed/unsigned interpretation ---------------------------------------------


def test_int_interpretation():
    assert Bits(8, 0x7F).int() == 127
    assert Bits(8, 0x80).int() == -128
    assert Bits(8, 0xFF).int() == -1


def test_dunder_int_is_unsigned():
    assert int(Bits(8, 0xFF)) == 255


def test_index_protocol():
    data = list(range(16))
    assert data[Bits(4, 3)] == 3


def test_bool():
    assert Bits(4, 1)
    assert not Bits(4, 0)


# -- arithmetic ---------------------------------------------------------------------


def test_add_wraps():
    assert (Bits(8, 0xFF) + 1).uint() == 0
    assert (Bits(8, 0xFF) + Bits(8, 2)).uint() == 1


def test_sub_wraps():
    assert (Bits(8, 0) - 1).uint() == 0xFF


def test_rsub():
    assert (1 - Bits(8, 2)).uint() == 0xFF


def test_mixed_width_takes_max():
    result = Bits(4, 0xF) + Bits(8, 1)
    assert result.nbits == 8
    assert result.uint() == 0x10


def test_mul():
    assert (Bits(8, 16) * 16).uint() == 0


def test_floordiv_mod():
    assert (Bits(8, 100) // 7).uint() == 14
    assert (Bits(8, 100) % 7).uint() == 2


def test_neg():
    assert (-Bits(8, 1)).uint() == 0xFF


# -- bitwise ------------------------------------------------------------------------


def test_and_or_xor_invert():
    a, b = Bits(8, 0b1100), Bits(8, 0b1010)
    assert (a & b).uint() == 0b1000
    assert (a | b).uint() == 0b1110
    assert (a ^ b).uint() == 0b0110
    assert (~a).uint() == 0xF3


def test_shifts():
    assert (Bits(8, 1) << 3).uint() == 8
    assert (Bits(8, 0x80) >> 7).uint() == 1
    assert (Bits(8, 1) << 8).uint() == 0    # overshift
    assert (Bits(8, 0x80) >> 8).uint() == 0


def test_shift_by_bits():
    assert (Bits(8, 1) << Bits(3, 2)).uint() == 4


# -- comparisons ---------------------------------------------------------------------


def test_eq_with_int_and_bits():
    assert Bits(8, 5) == 5
    assert Bits(8, 5) == Bits(8, 5)
    assert Bits(8, 5) != 6
    assert Bits(8, 0xFF) == 255     # unsigned comparison


def test_ordering_is_unsigned():
    assert Bits(8, 0xFF) > Bits(8, 1)
    assert Bits(8, 1) < 200
    assert Bits(8, 5) <= 5
    assert Bits(8, 5) >= 5


def test_hashable():
    assert len({Bits(8, 1), Bits(8, 1), Bits(4, 1)}) == 2


# -- slicing ---------------------------------------------------------------------------


def test_getitem_single_bit():
    b = Bits(8, 0b10000001)
    assert b[0] == 1
    assert b[7] == 1
    assert b[3] == 0


def test_getitem_slice():
    b = Bits(8, 0xAB)
    assert b[0:4].uint() == 0xB
    assert b[4:8].uint() == 0xA
    assert b[0:4].nbits == 4


def test_open_ended_slices():
    b = Bits(8, 0xAB)
    assert b[:4].uint() == 0xB
    assert b[4:].uint() == 0xA
    assert b[:].uint() == 0xAB


def test_bad_slices_raise():
    b = Bits(8)
    with pytest.raises(IndexError):
        b[8]
    with pytest.raises(IndexError):
        b[4:2]
    with pytest.raises(IndexError):
        b[0:9]
    with pytest.raises(ValueError):
        b[0:4:2]


def test_len():
    assert len(Bits(13)) == 13


# -- extension / concat ---------------------------------------------------------------


def test_zext():
    assert zext(Bits(4, 0xF), 8).uint() == 0x0F
    with pytest.raises(ValueError):
        zext(Bits(8), 4)


def test_sext():
    assert sext(Bits(4, 0x8), 8).uint() == 0xF8
    assert sext(Bits(4, 0x7), 8).uint() == 0x07


def test_concat():
    assert concat(Bits(4, 0xA), Bits(4, 0xB)).uint() == 0xAB
    assert concat(Bits(4, 0xA), Bits(4, 0xB)).nbits == 8
    assert concat(Bits(2, 1), Bits(2, 1), Bits(2, 1)).uint() == 0b010101


def test_concat_requires_bits():
    with pytest.raises(TypeError):
        concat(Bits(4, 1), 3)
    with pytest.raises(ValueError):
        concat()


# -- display ----------------------------------------------------------------------------


def test_repr_and_str():
    assert repr(Bits(8, 0xAB)) == "Bits8(0xab)"
    assert str(Bits(8, 0xAB)) == "ab"
    assert Bits(8, 0xAB).bin() == "0b10101011"
    assert Bits(5, 3).hex() == "0x03"


# -- helpers -------------------------------------------------------------------------------


def test_clog2():
    assert [clog2(n) for n in (1, 2, 3, 4, 8, 9, 1024)] == [0, 1, 2, 2, 3, 4, 10]
    with pytest.raises(ValueError):
        clog2(0)


def test_bw():
    assert bw(1) == 1       # degenerate select still needs one bit
    assert bw(2) == 1
    assert bw(4) == 2
    assert bw(5) == 3


# -- property-based tests: Bits arithmetic == modular arithmetic ----------------------


uint8 = st.integers(min_value=0, max_value=255)
widths = st.integers(min_value=1, max_value=64)


@given(widths, st.integers(), st.integers())
def test_prop_add_is_modular(nbits, a, b):
    mask = (1 << nbits) - 1
    result = Bits(nbits, a, trunc=True) + Bits(nbits, b, trunc=True)
    assert result.uint() == (a + b) & mask


@given(widths, st.integers(), st.integers())
def test_prop_sub_is_modular(nbits, a, b):
    mask = (1 << nbits) - 1
    result = Bits(nbits, a, trunc=True) - Bits(nbits, b, trunc=True)
    assert result.uint() == (a - b) & mask


@given(widths, st.integers(), st.integers())
def test_prop_mul_is_modular(nbits, a, b):
    mask = (1 << nbits) - 1
    result = Bits(nbits, a, trunc=True) * Bits(nbits, b, trunc=True)
    assert result.uint() == (a * b) & mask


@given(widths, st.integers())
def test_prop_double_invert_is_identity(nbits, a):
    b = Bits(nbits, a, trunc=True)
    assert (~~b).uint() == b.uint()


@given(widths, st.integers())
def test_prop_int_uint_roundtrip(nbits, a):
    b = Bits(nbits, a, trunc=True)
    assert Bits(nbits, b.int(), trunc=True).uint() == b.uint()


@given(st.integers(min_value=1, max_value=32), st.integers(), st.data())
def test_prop_slice_then_concat_roundtrip(nbits, a, data):
    b = Bits(nbits, a, trunc=True)
    cut = data.draw(st.integers(min_value=1, max_value=nbits - 1)) \
        if nbits > 1 else None
    if cut is None:
        return
    lo, hi = b[0:cut], b[cut:nbits]
    assert concat(hi, lo).uint() == b.uint()


@given(widths, st.integers(), st.integers(min_value=0, max_value=70))
def test_prop_shift_pair(nbits, a, sh):
    b = Bits(nbits, a, trunc=True)
    mask = (1 << nbits) - 1
    assert (b << sh).uint() == ((b.uint() << sh) & mask if sh < nbits else 0)
    assert (b >> sh).uint() == (b.uint() >> sh if sh < nbits else 0)


@given(widths, st.integers())
def test_prop_sext_preserves_signed_value(nbits, a):
    b = Bits(nbits, a, trunc=True)
    assert sext(b, nbits + 16).int() == b.int()


@given(widths, st.integers())
def test_prop_zext_preserves_unsigned_value(nbits, a):
    b = Bits(nbits, a, trunc=True)
    assert zext(b, nbits + 16).uint() == b.uint()
