"""Tests for the network substrate: FL network, routers, mesh, traffic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SimulationTool
from repro.net import (
    MeshNetworkStructural,
    NetMsg,
    NetworkFL,
    NetworkTrafficHarness,
    RouterCL,
    RouterRTL,
    measure_zero_load_latency,
)

NMSGS = 256
DATA_NBITS = 32
NENTRIES = 2


def _fl_network(nrouters=4):
    return NetworkFL(nrouters, NMSGS, DATA_NBITS, NENTRIES).elaborate()


def _mesh(router_type, nrouters=4):
    return MeshNetworkStructural(
        router_type, nrouters, NMSGS, DATA_NBITS, NENTRIES
    ).elaborate()


ALL_NETWORKS = [
    pytest.param(lambda n: _fl_network(n), id="fl"),
    pytest.param(lambda n: _mesh(RouterCL, n), id="cl"),
    pytest.param(lambda n: _mesh(RouterRTL, n), id="rtl"),
]


# -- message type ------------------------------------------------------------


def test_netmsg_fields():
    Msg = NetMsg(16, 256, 32)
    msg = Msg()
    msg.dest = 15
    msg.src = 3
    msg.opaque = 200
    msg.payload = 0xDEADBEEF
    assert int(msg.dest) == 15
    assert int(msg.src) == 3
    assert int(msg.opaque) == 200
    assert int(msg.payload) == 0xDEADBEEF


def test_netmsg_width_scales():
    assert NetMsg(4, 4, 8).nbits == 2 + 2 + 2 + 8
    assert NetMsg(64, 1024, 32).nbits == 6 + 6 + 10 + 32


# -- single-packet delivery ------------------------------------------------------


@pytest.mark.parametrize("factory", ALL_NETWORKS)
def test_single_packet_delivery(factory):
    net = factory(4)
    harness = NetworkTrafficHarness(net)
    latency = harness.send_single(0, 3)
    assert latency >= 1


@pytest.mark.parametrize("factory", ALL_NETWORKS)
def test_all_pairs_delivery_4node(factory):
    net = factory(4)
    harness = NetworkTrafficHarness(net)
    for src in range(4):
        for dest in range(4):
            if src != dest:
                harness.send_single(src, dest)


def test_mesh_latency_scales_with_distance():
    net = _mesh(RouterCL, 16)
    harness = NetworkTrafficHarness(net)
    near = harness.send_single(0, 1)      # one hop
    far = harness.send_single(0, 15)      # 3+3 hops
    assert far > near


def test_fl_network_is_distance_independent():
    net = _fl_network(16)
    harness = NetworkTrafficHarness(net)
    assert harness.send_single(0, 1) == harness.send_single(0, 15)


def test_cl_rtl_routers_agree_on_zero_load_latency():
    """CL and RTL routers implement the same microarchitecture; their
    zero-load latencies should be close."""
    zl_cl = measure_zero_load_latency(_mesh(RouterCL, 9), npairs=10)
    zl_rtl = measure_zero_load_latency(_mesh(RouterRTL, 9), npairs=10)
    assert abs(zl_cl - zl_rtl) <= 2.0


# -- routing policy ------------------------------------------------------------------


def test_xy_routing_policy():
    router = RouterCL(5, 16, NMSGS, DATA_NBITS, NENTRIES)   # center (1,1)
    assert router.route(5) == RouterCL.TERM
    assert router.route(6) == RouterCL.EAST
    assert router.route(4) == RouterCL.WEST
    assert router.route(9) == RouterCL.SOUTH
    assert router.route(1) == RouterCL.NORTH
    # X before Y: dest (2,2) goes EAST first
    assert router.route(10) == RouterCL.EAST


def test_rtl_router_same_routing_as_cl():
    cl = RouterCL(5, 16, NMSGS, DATA_NBITS, NENTRIES)
    rtl = RouterRTL(5, 16, NMSGS, DATA_NBITS, NENTRIES)
    for dest in range(16):
        assert cl.route(dest) == rtl.route(dest)


# -- uniform random traffic: delivery invariants ---------------------------------------


@pytest.mark.parametrize("factory", ALL_NETWORKS)
def test_uniform_random_no_packet_loss(factory):
    net = factory(4)
    harness = NetworkTrafficHarness(net, seed=42)
    stats = harness.run_uniform_random(0.1, ncycles=300)
    assert stats.ejected == stats.injected


@pytest.mark.parametrize("factory", ALL_NETWORKS)
def test_heavy_load_backpressure_no_loss(factory):
    net = factory(4)
    harness = NetworkTrafficHarness(net, seed=7)
    stats = harness.run_uniform_random(0.9, ncycles=200, drain=5000)
    assert stats.ejected == stats.injected


@settings(max_examples=5, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1),
       st.floats(min_value=0.02, max_value=0.5))
def test_prop_cl_mesh_conserves_packets(seed, rate):
    net = _mesh(RouterCL, 4)
    harness = NetworkTrafficHarness(net, seed=seed)
    stats = harness.run_uniform_random(rate, ncycles=150, drain=3000)
    assert stats.ejected == stats.injected


def test_latency_increases_with_load():
    def make():
        return _mesh(RouterCL, 9)

    low = NetworkTrafficHarness(make(), seed=1).run_uniform_random(
        0.05, 400, warmup=50)
    high = NetworkTrafficHarness(make(), seed=1).run_uniform_random(
        0.6, 400, warmup=50)
    assert high.avg_latency > low.avg_latency


def test_throughput_saturates():
    """Past saturation, offered load no longer raises throughput."""
    def run(rate):
        harness = NetworkTrafficHarness(_mesh(RouterCL, 9), seed=3)
        return harness.run_uniform_random(rate, 400, warmup=100).throughput

    t_low = run(0.1)
    t_mid = run(0.5)
    t_max = run(0.95)
    assert t_mid > t_low
    assert t_max < 0.95   # cannot deliver full offered load


# -- sim integration ------------------------------------------------------------


def test_mesh_is_structural_level():
    net = _mesh(RouterCL, 4)
    assert net.level() == "struct"
    assert len(net.routers) == 4


def test_mesh_line_trace():
    net = _mesh(RouterCL, 4)
    SimulationTool(net)
    assert "|" in net.line_trace()


# -- arbitration grant holding ------------------------------------------------


@pytest.mark.parametrize("router_cls", [RouterCL, RouterRTL],
                         ids=["cl", "rtl"])
def test_router_holds_stalled_offer(router_cls):
    """Regression (found by the differential cosim harness): while an
    output offer is stalled (val=1, rdy=0) the router must not
    re-arbitrate it away — a competing input with better round-robin
    priority used to replace the offered payload mid-stall, violating
    val/rdy payload stability."""
    router = router_cls(0, 4, NMSGS, DATA_NBITS, NENTRIES).elaborate()
    sim = SimulationTool(router)
    sim.reset()
    pkt_a, pkt_b = 0xAA, 0xBB        # dest=0: both route to TERM

    def put(port, pkt):
        router.in_[port].msg.value = pkt
        router.in_[port].val.value = 1
        for _ in range(10):
            sim.eval_combinational()
            if router.in_[port].rdy.uint():
                break
            sim.cycle()
        else:
            raise AssertionError("input never accepted")
        sim.cycle()
        router.in_[port].val.value = 0

    router.out[0].rdy.value = 0
    put(2, pkt_a)                     # arrives first, via input 2
    for _ in range(10):               # let the offer reach out[0]
        sim.eval_combinational()
        if router.out[0].val.uint():
            break
        sim.cycle()
    else:
        raise AssertionError("offer never appeared")
    assert router.out[0].msg.uint() == pkt_a

    # A competing packet on input 1 (better round-robin priority) must
    # not displace the stalled offer.
    put(1, pkt_b)
    for _ in range(5):
        sim.eval_combinational()
        assert router.out[0].val.uint() == 1
        assert router.out[0].msg.uint() == pkt_a
        sim.cycle()

    # Release the stall: both packets drain, the held offer first.
    router.out[0].rdy.value = 1
    delivered = []
    for _ in range(10):
        sim.eval_combinational()
        if router.out[0].val.uint():
            delivered.append(router.out[0].msg.uint())
        sim.cycle()
        if len(delivered) == 2:
            break
    assert delivered == [pkt_a, pkt_b]
