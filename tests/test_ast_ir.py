"""Unit tests for the behavioral-block IR and subset enforcement."""

import pytest

from repro.core import InPort, Model, OutPort, Wire
from repro.core.ast_ir import (
    AssignSig,
    BinOp,
    Const,
    For,
    If,
    SigRead,
    TranslationError,
    translate_block,
)


def _lower(model, kind="comb", index=0):
    model.elaborate()
    blocks = model.get_comb_blocks() if kind == "comb" \
        else model.get_tick_blocks()
    blk = blocks[index]
    ir_kind = kind if kind == "comb" else (
        "tick_cl" if blk.level == "cl" else "tick_rtl")
    return translate_block(model, blk, ir_kind)


# -- basic lowering ------------------------------------------------------------


def test_simple_assign_lowered():
    class M(Model):
        def __init__(s):
            s.a = InPort(8)
            s.out = OutPort(8)

            @s.combinational
            def logic():
                s.out.value = s.a + 1

    ir = _lower(M())
    assert len(ir.body) == 1
    stmt = ir.body[0]
    assert isinstance(stmt, AssignSig)
    assert not stmt.is_next
    assert isinstance(stmt.expr, BinOp)
    assert stmt.expr.op == "+"


def test_constants_fold_in_rtl_blocks():
    class M(Model):
        def __init__(s):
            s.out = OutPort(8)
            s.offset = 5                # elaboration-time constant

            @s.combinational
            def logic():
                s.out.value = s.offset + 1

    ir = _lower(M())
    expr = ir.body[0].expr
    assert isinstance(expr.left, Const)
    assert expr.left.value == 5


def test_for_loop_with_static_bounds():
    class M(Model):
        def __init__(s, n=4):
            s.out = [OutPort(8) for _ in range(n)]
            s.n = n

            @s.combinational
            def logic():
                for i in range(s.n):
                    s.out[i].value = i

    ir = _lower(M())
    loop = ir.body[0]
    assert isinstance(loop, For)
    assert (loop.start, loop.stop, loop.step) == (0, 4, 1)


def test_dynamic_index_becomes_dynamic_sigref():
    class M(Model):
        def __init__(s):
            s.sel = InPort(2)
            s.regs = [Wire(8) for _ in range(4)]
            s.out = OutPort(8)

            @s.combinational
            def logic():
                s.out.value = s.regs[s.sel.uint()].value

    ir = _lower(M())
    read = ir.body[0].expr
    assert isinstance(read, SigRead)
    assert read.ref.is_dynamic()
    assert len(read.ref.signals) == 4


def test_struct_field_becomes_slice():
    from repro.mem import MemReqMsg

    class M(Model):
        def __init__(s):
            s.msg = InPort(MemReqMsg)
            s.addr = OutPort(32)

            @s.combinational
            def logic():
                s.addr.value = s.msg.addr.value

    ir = _lower(M())
    ref = ir.body[0].expr.ref
    assert (ref.lo, ref.hi) == MemReqMsg.field_slice("addr")


def test_bare_signal_truthiness_reads_signal():
    class M(Model):
        def __init__(s):
            s.en = InPort(1)
            s.out = OutPort(1)

            @s.combinational
            def logic():
                if s.en:
                    s.out.value = 1
                else:
                    s.out.value = 0

    ir = _lower(M())
    cond = ir.body[0].cond
    assert isinstance(cond, SigRead)


# -- subset enforcement ------------------------------------------------------------


def _expect_error(model_cls, match, kind="comb"):
    with pytest.raises(TranslationError, match=match):
        _lower(model_cls(), kind=kind)


def test_method_call_rejected():
    class M(Model):
        def helper(s):
            return 1

        def __init__(s):
            s.out = OutPort(8)

            @s.combinational
            def logic():
                s.out.value = s.helper()

    _expect_error(M, "calls")


def test_value_write_in_tick_rejected():
    class M(Model):
        def __init__(s):
            s.out = OutPort(8)

            @s.tick_rtl
            def logic():
                s.out.value = 1

    _expect_error(M, "tick block", kind="tick")


def test_next_write_in_comb_rejected():
    class M(Model):
        def __init__(s):
            s.out = OutPort(8)

            @s.combinational
            def logic():
                s.out.next = 1

    _expect_error(M, "combinational")


def test_plain_state_write_in_rtl_rejected():
    class M(Model):
        def __init__(s):
            s.count = 0
            s.out = OutPort(8)

            @s.tick_rtl
            def logic():
                s.count = s.count + 1
                s.out.next = 0

    _expect_error(M, "CL blocks|Wire", kind="tick")


def test_plain_state_allowed_in_cl():
    class M(Model):
        def __init__(s):
            s.count = 0
            s.out = OutPort(8)

            @s.tick_cl
            def logic():
                s.count = s.count + 1
                s.out.next = s.count

    ir = _lower(M(), kind="tick")
    assert "count" in {ref.name for ref in ir.state_names}


def test_dynamic_range_rejected():
    class M(Model):
        def __init__(s):
            s.n = InPort(4)
            s.out = OutPort(8)

            @s.combinational
            def logic():
                total = 0
                for i in range(s.n.uint()):
                    total = total + i
                s.out.value = total

    _expect_error(M, "constant")


def test_unknown_name_rejected():
    class M(Model):
        def __init__(s):
            s.out = OutPort(8)

            @s.combinational
            def logic():
                s.out.value = undefined_name    # noqa: F821

    _expect_error(M, "unknown name")


def test_error_message_names_model_and_line():
    class M(Model):
        def __init__(s):
            s.out = OutPort(8)

            @s.combinational
            def logic():
                s.out.value = s.missing_thing

    with pytest.raises(TranslationError, match="top.logic"):
        _lower(M())


def test_float_constant_rejected():
    class M(Model):
        def __init__(s):
            s.out = OutPort(8)

            @s.combinational
            def logic():
                s.out.value = 1.5

    _expect_error(M, "constant")


def test_local_array_init_and_store():
    class M(Model):
        def __init__(s):
            s.out = OutPort(8)

            @s.combinational
            def logic():
                xs = [0] * 4
                for i in range(4):
                    xs[i] = i * 2
                s.out.value = xs[3]

    ir = _lower(M())
    assert ir.locals["xs"] == ("array", 4)
