"""Unit tests for elaboration: naming, nets, connectors, sensitivity."""

import pytest

from repro import (
    ElaborationError,
    InPort,
    Model,
    OutPort,
    SimulationTool,
    Wire,
)


class _Pass(Model):
    def __init__(s, nbits=8):
        s.in_ = InPort(nbits)
        s.out = OutPort(nbits)
        s.connect(s.in_, s.out)


class _Wrapper(Model):
    def __init__(s):
        s.in_ = InPort(8)
        s.out = OutPort(8)
        s.inner = _Pass()
        s.connect(s.in_, s.inner.in_)
        s.connect(s.inner.out, s.out)


def test_names_assigned():
    model = _Wrapper().elaborate()
    assert model.name == "top"
    assert model.inner.name == "inner"
    assert model.inner.full_name() == "top.inner"
    assert model.in_.name == "in_"
    assert model.inner.out.parent is model.inner


def test_submodels_registered():
    model = _Wrapper().elaborate()
    assert model.get_submodels() == [model.inner]


def test_full_connection_merges_nets():
    model = _Wrapper().elaborate()
    assert model.in_._net is model.inner.in_._net
    assert model.out._net is model.inner.out._net


def test_connected_value_propagates_without_sim():
    model = _Wrapper().elaborate()
    model.in_.value = 99
    assert model.inner.in_.value == 99


def test_clk_reset_propagate():
    model = _Wrapper().elaborate()
    assert model.reset._net is model.inner.reset._net
    assert model.clk._net is model.inner.clk._net


def test_width_mismatch_raises():
    class Bad(Model):
        def __init__(s):
            s.a = Wire(8)
            s.b = Wire(4)
            s.connect(s.a, s.b)

    with pytest.raises(ElaborationError):
        Bad().elaborate()


def test_connect_rejects_junk():
    class Bad(Model):
        def __init__(s):
            s.a = Wire(8)
            s.connect(s.a, "nope")

    with pytest.raises(TypeError):
        Bad()


def test_connect_two_constants_rejected():
    model = Model()
    with pytest.raises(TypeError):
        model.connect(1, 2)


def test_constant_tie():
    class Tied(Model):
        def __init__(s):
            s.out = OutPort(8)
            s.mid = Wire(8)
            s.connect(s.mid, 0x5A)
            s.connect(s.mid, s.out)

    model = Tied().elaborate()
    SimulationTool(model)
    assert model.out == 0x5A


def test_constant_too_wide_raises():
    class Fits(Model):
        def __init__(s):
            s.out = OutPort(3)
            s.connect(s.out, 7)     # fits

    Fits().elaborate()

    class TooWide(Model):
        def __init__(s):
            s.out = OutPort(2)
            s.connect(s.out, 7)     # does not fit

    with pytest.raises(ElaborationError):
        TooWide().elaborate()


def test_slice_connection():
    class SliceConn(Model):
        def __init__(s):
            s.in_ = InPort(8)
            s.lo = OutPort(4)
            s.hi = OutPort(4)
            s.connect(s.in_[0:4], s.lo)
            s.connect(s.in_[4:8], s.hi)

    model = SliceConn().elaborate()
    sim = SimulationTool(model)
    model.in_.value = 0xAB
    sim.eval_combinational()
    assert model.lo == 0xB
    assert model.hi == 0xA


def test_slice_connection_into_child():
    class Child(Model):
        def __init__(s):
            s.in_ = InPort(4)
            s.out = OutPort(4)
            s.connect(s.in_, s.out)

    class Parent(Model):
        def __init__(s):
            s.in_ = InPort(8)
            s.out = OutPort(4)
            s.child = Child()
            s.connect(s.in_[2:6], s.child.in_)
            s.connect(s.child.out, s.out)

    model = Parent().elaborate()
    sim = SimulationTool(model)
    model.in_.value = 0b0011_1100
    sim.eval_combinational()
    assert model.out == 0xF


def test_slice_width_mismatch_raises():
    class Bad(Model):
        def __init__(s):
            s.a = Wire(8)
            s.b = Wire(8)
            s.connect(s.a[0:4], s.b)

    with pytest.raises(ElaborationError):
        Bad().elaborate()


def test_sensitivity_includes_dynamic_index():
    from repro import bw

    class Mux(Model):
        def __init__(s, nports=4):
            s.in_ = InPort[nports](8)
            s.sel = InPort(bw(nports))
            s.out = OutPort(8)

            @s.combinational
            def logic():
                s.out.value = s.in_[s.sel.uint()].value

    model = Mux().elaborate()
    blk = model.get_comb_blocks()[0]
    nets = {sig._net for sig in blk.signals}
    assert model.sel._net in nets
    for port in model.in_:
        assert port._net in nets


def test_elaborate_idempotent():
    model = _Wrapper().elaborate()
    nets_before = len(model._all_nets)
    model.elaborate()
    assert len(model._all_nets) == nets_before


def test_model_level_tags():
    class Fl(Model):
        def __init__(s):
            s.out = OutPort(1)

            @s.tick_fl
            def logic():
                pass

    class Cl(Model):
        def __init__(s):
            s.out = OutPort(1)

            @s.tick_cl
            def logic():
                pass

    assert Fl().level() == "fl"
    assert Cl().level() == "cl"
    assert _Pass().level() == "struct"


def test_connect_auto_pairs_by_name():
    class Dpath(Model):
        def __init__(s):
            s.status = OutPort(4)
            s.control = InPort(4)

    class Ctrl(Model):
        def __init__(s):
            s.status = InPort(4)
            s.control = OutPort(4)

    class Top(Model):
        def __init__(s):
            s.dpath = Dpath()
            s.ctrl = Ctrl()
            s.connect_auto(s.dpath, s.ctrl)

    model = Top().elaborate()
    assert model.dpath.status._net is model.ctrl.status._net
    assert model.dpath.control._net is model.ctrl.control._net
