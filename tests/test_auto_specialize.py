"""Tests for automatic hierarchy specialization (the paper's stated
future-work feature, implemented as an extension)."""

import pytest

from repro.core import Model, SimulationTool
from repro.core.simjit import JITModel, SpecializationError, auto_specialize
from repro.accel import Tile, mvmult_data, mvmult_xcel
from repro.accel.kernels import Y_BASE
from repro.net import MeshNetworkStructural, RouterCL, RouterRTL
from repro.net.traffic import NetworkTrafficHarness
from repro.proc import assemble


def test_auto_specializes_rtl_tile_components():
    tile = Tile(("rtl", "rtl", "rtl"))
    auto_specialize(tile)
    stats = tile._auto_specialize_stats
    # proc, two caches, accelerator, arbiter all compile; the FL magic
    # memory stays interpreted.
    assert sorted(stats["specialized"]) == sorted(
        ["ProcRTL", "CacheRTL", "CacheRTL", "DotProductRTL",
         "MemArbiter"])
    assert "TestMemory" in stats["interpreted"]
    assert isinstance(tile.proc, JITModel)
    assert isinstance(tile.icache, JITModel)
    assert not isinstance(tile.mem, JITModel)


def test_auto_specialized_tile_is_cycle_exact():
    words = assemble(mvmult_xcel(2, 8))
    data, expected = mvmult_data(2, 8)

    def run(tile):
        tile.elaborate()
        tile.mem.load(0, words)
        for addr, value in data.items():
            tile.mem.write_word(addr, value)
        sim = SimulationTool(tile)
        sim.reset()
        while not int(tile.proc.done):
            sim.cycle()
            assert sim.ncycles < 100_000
        return sim.ncycles, [
            tile.mem.read_word(Y_BASE + 4 * i) for i in range(2)
        ]

    interp_cycles, interp_result = run(Tile(("rtl", "rtl", "rtl")))
    jit_cycles, jit_result = run(
        auto_specialize(Tile(("rtl", "rtl", "rtl"))))
    assert interp_result == jit_result == expected
    assert interp_cycles == jit_cycles


def test_auto_specializes_whole_mesh_as_one_unit():
    """A pure-RTL mesh is one maximal subtree: each router (with its
    queues) specializes; alternatively the whole mesh could.  Here the
    mesh is reached through list attributes, so routers specialize
    individually — delivery must be unchanged."""
    net = MeshNetworkStructural(RouterRTL, 4, 64, 16, 2)
    auto_specialize(net)
    assert all(isinstance(r, JITModel) for r in net.routers)
    stats = NetworkTrafficHarness(net.elaborate(), seed=5) \
        .run_uniform_random(0.2, 150)
    reference = NetworkTrafficHarness(
        MeshNetworkStructural(RouterRTL, 4, 64, 16, 2).elaborate(),
        seed=5).run_uniform_random(0.2, 150)
    assert stats.latencies == reference.latencies


def test_auto_specialize_handles_cl_models():
    net = MeshNetworkStructural(RouterCL, 4, 64, 16, 2)
    auto_specialize(net)
    assert all(isinstance(r, JITModel) for r in net.routers)


def test_auto_specialize_rejects_elaborated_model():
    net = MeshNetworkStructural(RouterRTL, 4, 64, 16, 2).elaborate()
    with pytest.raises(SpecializationError):
        auto_specialize(net)


def test_auto_specialize_leaves_fl_leaves_alone():
    from repro.mem import TestMemory

    class Top(Model):
        def __init__(s):
            s.mem = TestMemory(nports=1)

    top = Top()
    auto_specialize(top)
    assert not isinstance(top.mem, JITModel)
