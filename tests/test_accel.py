"""Tests for the dot-product accelerator models and the arbiter."""

import pytest

from repro import Model, SimulationTool
from repro.accel import (
    DotProductCL,
    DotProductFL,
    DotProductRTL,
    MemArbiter,
    XcelMsg,
    XcelReqMsg,
)
from repro.mem import MemMsg, MemReqMsg, TestMemory

ACCELS = [DotProductFL, DotProductCL, DotProductRTL]


class _AccelHarness(Model):
    """Accelerator wired to a magic memory; CPU side driven by tests."""

    def __init__(s, accel_cls, mem_latency=1):
        s.accel = accel_cls(MemMsg(), XcelMsg())
        s.mem = TestMemory(nports=1, latency=mem_latency, size=1 << 16)
        s.connect(s.accel.mem_ifc.req, s.mem.ports[0].req)
        s.connect(s.accel.mem_ifc.resp, s.mem.ports[0].resp)


class _XcelDriver:
    def __init__(self, sim, port, max_cycles=3000):
        self.sim = sim
        self.port = port
        self.max_cycles = max_cycles

    def _send(self, ctrl, data):
        port, sim = self.port, self.sim
        port.req_msg.value = XcelReqMsg.mk(ctrl, data)
        port.req_val.value = 1
        for _ in range(self.max_cycles):
            accepted = int(port.req_val) and int(port.req_rdy)
            sim.cycle()
            if accepted:
                port.req_val.value = 0
                return
        raise AssertionError("xcel request never accepted")

    def configure(self, size, src0, src1):
        self._send(1, size)
        self._send(2, src0)
        self._send(3, src1)

    def go(self):
        port, sim = self.port, self.sim
        self._send(0, 0)
        port.resp_rdy.value = 1
        for _ in range(self.max_cycles):
            if int(port.resp_val) and int(port.resp_rdy):
                result = int(port.resp_msg.value.data)
                sim.cycle()
                port.resp_rdy.value = 0
                return result
            sim.cycle()
        raise AssertionError("no accelerator response")


def _run_dot(accel_cls, vec0, vec1, mem_latency=1):
    harness = _AccelHarness(accel_cls, mem_latency).elaborate()
    sim = SimulationTool(harness)
    sim.reset()
    src0, src1 = 0x1000, 0x2000
    harness.mem.load(src0, vec0)
    harness.mem.load(src1, vec1)
    driver = _XcelDriver(sim, harness.accel.cpu_ifc)
    driver.configure(len(vec0), src0, src1)
    result = driver.go()
    return result, sim.ncycles


@pytest.mark.parametrize("accel_cls", ACCELS)
def test_dot_product_basic(accel_cls):
    result, _ = _run_dot(accel_cls, [1, 2, 3, 4], [10, 10, 10, 10])
    assert result == 100


@pytest.mark.parametrize("accel_cls", ACCELS)
def test_dot_product_single_element(accel_cls):
    result, _ = _run_dot(accel_cls, [7], [6])
    assert result == 42


@pytest.mark.parametrize("accel_cls", ACCELS)
def test_dot_product_wraps_32bit(accel_cls):
    result, _ = _run_dot(accel_cls, [0xFFFF, 0xFFFF], [0xFFFF, 0xFFFF])
    assert result == (2 * 0xFFFF * 0xFFFF) & 0xFFFFFFFF


@pytest.mark.parametrize("accel_cls", ACCELS)
def test_dot_product_slow_memory(accel_cls):
    result, _ = _run_dot(accel_cls, [3, 1, 4, 1, 5, 9], [2, 6, 5, 3, 5, 8],
                         mem_latency=4)
    expected = sum(a * b for a, b in zip([3, 1, 4, 1, 5, 9],
                                         [2, 6, 5, 3, 5, 8]))
    assert result == expected


@pytest.mark.parametrize("accel_cls", ACCELS)
def test_dot_product_back_to_back_runs(accel_cls):
    """Reconfigure and run twice: no stale state between runs."""
    harness = _AccelHarness(accel_cls).elaborate()
    sim = SimulationTool(harness)
    sim.reset()
    harness.mem.load(0x1000, [1, 2])
    harness.mem.load(0x2000, [3, 4])
    harness.mem.load(0x3000, [5, 6, 7])
    driver = _XcelDriver(sim, harness.accel.cpu_ifc)
    driver.configure(2, 0x1000, 0x2000)
    assert driver.go() == 1 * 3 + 2 * 4
    driver.configure(3, 0x3000, 0x3000)
    assert driver.go() == 25 + 36 + 49


def test_cl_pipelines_memory_requests():
    """The CL accelerator pipelines reads; the FL one serializes —
    the CL run should need fewer cycles for a long vector."""
    vec = list(range(1, 33))
    _, fl_cycles = _run_dot(DotProductFL, vec, vec)
    _, cl_cycles = _run_dot(DotProductCL, vec, vec)
    assert cl_cycles < fl_cycles


def test_rtl_pipelines_memory_requests():
    vec = list(range(1, 33))
    _, fl_cycles = _run_dot(DotProductFL, vec, vec)
    _, rtl_cycles = _run_dot(DotProductRTL, vec, vec)
    assert rtl_cycles < fl_cycles


# -- arbiter ------------------------------------------------------------------


class _ArbHarness(Model):
    def __init__(s):
        s.arb = MemArbiter(MemMsg())
        s.mem = TestMemory(nports=1, latency=1, size=1 << 16)
        s.connect(s.arb.mem_ifc.req, s.mem.ports[0].req)
        s.connect(s.arb.mem_ifc.resp, s.mem.ports[0].resp)


def _arb_fixture():
    harness = _ArbHarness().elaborate()
    sim = SimulationTool(harness)
    sim.reset()
    return harness, sim


def _arb_transact(sim, port, req, max_cycles=100):
    port.req_msg.value = req
    port.req_val.value = 1
    port.resp_rdy.value = 1
    for _ in range(max_cycles):
        accepted = int(port.req_val) and int(port.req_rdy)
        sim.cycle()
        if accepted:
            break
    else:
        raise AssertionError("arbiter never accepted request")
    port.req_val.value = 0
    for _ in range(max_cycles):
        if int(port.resp_val) and int(port.resp_rdy):
            resp = port.resp_msg.value
            sim.cycle()
            port.resp_rdy.value = 0
            return resp
        sim.cycle()
    raise AssertionError("no response through arbiter")


def test_arbiter_single_client():
    harness, sim = _arb_fixture()
    harness.mem.write_word(0x40, 77)
    resp = _arb_transact(sim, harness.arb.clients[0],
                         MemReqMsg.mk_rd(0x40))
    assert int(resp.data) == 77


def test_arbiter_both_clients_sequential():
    harness, sim = _arb_fixture()
    harness.mem.write_word(0x40, 11)
    harness.mem.write_word(0x44, 22)
    r0 = _arb_transact(sim, harness.arb.clients[0], MemReqMsg.mk_rd(0x40))
    r1 = _arb_transact(sim, harness.arb.clients[1], MemReqMsg.mk_rd(0x44))
    assert int(r0.data) == 11
    assert int(r1.data) == 22


def test_arbiter_concurrent_requests_both_served():
    """Both clients assert requests at once; each gets its own answer."""
    harness, sim = _arb_fixture()
    harness.mem.write_word(0x10, 100)
    harness.mem.write_word(0x20, 200)
    c0, c1 = harness.arb.clients
    for port, addr in ((c0, 0x10), (c1, 0x20)):
        port.req_msg.value = MemReqMsg.mk_rd(addr)
        port.req_val.value = 1
        port.resp_rdy.value = 1
    results = {}
    for _ in range(100):
        accepted = [int(p.req_val) and int(p.req_rdy) for p in (c0, c1)]
        responded = [
            (i, int(p.resp_msg.value.data))
            for i, p in enumerate((c0, c1))
            if int(p.resp_val) and int(p.resp_rdy)
        ]
        sim.cycle()
        for i, p in enumerate((c0, c1)):
            if accepted[i]:
                p.req_val.value = 0
        for i, data in responded:
            results[i] = data
            (c0, c1)[i].resp_rdy.value = 0
        if len(results) == 2:
            break
    assert results == {0: 100, 1: 200}
