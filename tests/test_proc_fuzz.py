"""Randomized cross-level processor verification.

Generates random (but guaranteed-terminating) MinRISC programs and
checks that the port-based FL/CL/RTL processors retire exactly the
same architectural state as the bare ISA simulator — the golden-model
methodology of paper Section III-C, driven as a property test.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.proc import IsaSim, ProcCL, ProcFL, ProcRTL, assemble, run_program

SCRATCH = 0x4000

_ALU_R = ["add", "sub", "and", "or", "xor", "slt", "sltu", "mul"]
_ALU_I = ["addi", "andi", "ori", "xori", "slti"]
_BRANCHES = ["beq", "bne", "blt", "bge"]


def generate_program(seed, length=30):
    """Random straight-line-ish program: ALU ops, loads/stores to a
    scratch region, and *forward-only* branches (always terminates)."""
    rng = random.Random(seed)
    lines = [f"li r{i}, {rng.randint(-100, 100)}" for i in range(1, 8)]
    lines.append(f"li r9, {SCRATCH}")

    body = []
    for _ in range(length):
        kind = rng.random()
        rd = rng.randint(1, 7)
        rs1 = rng.randint(1, 7)
        rs2 = rng.randint(1, 7)
        if kind < 0.45:
            body.append(f"{rng.choice(_ALU_R)} r{rd}, r{rs1}, r{rs2}")
        elif kind < 0.65:
            imm = rng.randint(-64, 63)
            body.append(f"{rng.choice(_ALU_I)} r{rd}, r{rs1}, {imm}")
        elif kind < 0.75:
            offset = 4 * rng.randint(0, 15)
            body.append(f"sw r{rd}, {offset}(r9)")
        elif kind < 0.85:
            offset = 4 * rng.randint(0, 15)
            body.append(f"lw r{rd}, {offset}(r9)")
        else:
            # Forward branch skipping 1-3 instructions (bounded by
            # the tail padding below).
            skip = rng.randint(1, 3)
            body.append(
                f"{rng.choice(_BRANCHES)} r{rs1}, r{rs2}, {skip}")
    body.extend(["nop"] * 3)     # landing pad for trailing branches

    # Checksum architectural state into memory.
    tail = []
    for i in range(1, 8):
        tail.append(f"sw r{i}, {4 * (16 + i)}(r9)")
    tail.append("halt")
    return "\n".join(lines + body + tail)


def _golden(words):
    sim = IsaSim()
    sim.load_program(words)
    sim.run(max_instrs=10_000)
    return sim


def _checksum(read_word):
    return [read_word(SCRATCH + 4 * (16 + i)) for i in range(1, 8)]


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_prop_cl_proc_matches_golden(seed):
    words = assemble(generate_program(seed))
    golden = _golden(words)
    harness, _ = run_program(ProcCL, words, max_cycles=300_000)
    assert _checksum(harness.mem.read_word) == _checksum(golden.read_mem)
    assert harness.proc.num_instrs == golden.num_instrs


@settings(max_examples=5, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_prop_rtl_proc_matches_golden(seed):
    words = assemble(generate_program(seed))
    golden = _golden(words)
    harness, _ = run_program(ProcRTL, words, max_cycles=300_000)
    assert _checksum(harness.mem.read_word) == _checksum(golden.read_mem)
    assert harness.proc.num_instrs == golden.num_instrs


@settings(max_examples=5, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_prop_fl_proc_matches_golden(seed):
    words = assemble(generate_program(seed))
    golden = _golden(words)
    harness, _ = run_program(ProcFL, words, max_cycles=300_000)
    assert _checksum(harness.mem.read_word) == _checksum(golden.read_mem)


@pytest.mark.parametrize("seed", [11, 22, 33])
def test_jit_rtl_proc_matches_golden(seed):
    """The SimJIT-compiled RTL processor retires the same state."""
    from repro.core import Model, SimulationTool
    from repro.core.simjit import SimJITRTL
    from repro.mem import TestMemory

    words = assemble(generate_program(seed))
    golden = _golden(words)

    class Harness(Model):
        def __init__(s):
            s.proc = SimJITRTL(ProcRTL().elaborate()).specialize()
            s.mem = TestMemory(nports=2, latency=1, size=1 << 20)
            s.connect(s.proc.imem_ifc.req, s.mem.ports[0].req)
            s.connect(s.proc.imem_ifc.resp, s.mem.ports[0].resp)
            s.connect(s.proc.dmem_ifc.req, s.mem.ports[1].req)
            s.connect(s.proc.dmem_ifc.resp, s.mem.ports[1].resp)

    harness = Harness().elaborate()
    harness.mem.load(0, words)
    sim = SimulationTool(harness)
    sim.reset()
    while not int(harness.proc.done):
        sim.cycle()
        assert sim.ncycles < 300_000
    assert _checksum(harness.mem.read_word) == _checksum(golden.read_mem)
