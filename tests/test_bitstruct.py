"""Unit tests for BitStruct message types."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import Bits, BitStruct, Field, mk_bitstruct


class MemReqMsg(BitStruct):
    type_ = Field(1)
    addr = Field(32)
    data = Field(32)


class NestedMsg(BitStruct):
    header = Field(MemReqMsg)
    crc = Field(8)


def test_total_width():
    assert MemReqMsg.nbits == 65


def test_field_offsets_msb_first():
    # First declared field occupies the most-significant bits.
    assert MemReqMsg.field_slice("type_") == (64, 65)
    assert MemReqMsg.field_slice("addr") == (32, 64)
    assert MemReqMsg.field_slice("data") == (0, 32)


def test_field_read_write():
    msg = MemReqMsg()
    msg.type_ = 1
    msg.addr = 0x1000
    msg.data = 0xDEADBEEF
    assert msg.type_ == 1
    assert msg.addr == 0x1000
    assert msg.data == 0xDEADBEEF


def test_field_write_truncates():
    msg = MemReqMsg()
    msg.type_ = 3           # only 1 bit wide
    assert msg.type_ == 1


def test_pack_unpack_roundtrip():
    msg = MemReqMsg()
    msg.type_ = 1
    msg.addr = 0xABCD
    msg.data = 42
    packed = msg.to_bits()
    assert isinstance(packed, Bits)
    again = MemReqMsg(packed)
    assert again.addr == 0xABCD
    assert again.data == 42
    assert again.type_ == 1


def test_construct_from_int():
    msg = MemReqMsg(0)
    assert msg.addr == 0


def test_construct_from_other_struct():
    msg = MemReqMsg()
    msg.data = 7
    copy = MemReqMsg(msg)
    assert copy.data == 7


def test_field_returns_bits_of_right_width():
    msg = MemReqMsg()
    assert msg.addr.nbits == 32
    assert msg.type_.nbits == 1


def test_nested_struct_field():
    assert NestedMsg.nbits == 65 + 8
    msg = NestedMsg()
    msg.crc = 0x5A
    header = MemReqMsg()
    header.addr = 0x42
    msg.header = header
    assert msg.crc == 0x5A
    assert msg.header.addr == 0x42
    assert isinstance(msg.header, MemReqMsg)


def test_equality_and_hash():
    a, b = MemReqMsg(), MemReqMsg()
    a.data = 9
    b.data = 9
    assert a == b
    assert hash(a) == hash(b)
    b.data = 10
    assert a != b


def test_eq_against_int():
    msg = MemReqMsg(5)
    assert msg == 5


def test_int_conversion():
    msg = MemReqMsg()
    msg.data = 3
    assert int(msg) == 3


def test_repr_mentions_fields():
    text = repr(MemReqMsg())
    assert "addr" in text and "data" in text


def test_field_names():
    assert MemReqMsg.field_names() == ["type_", "addr", "data"]


def test_field_slice_unknown_raises():
    with pytest.raises(AttributeError):
        MemReqMsg.field_slice("nope")


def test_bad_field_width_raises():
    with pytest.raises(ValueError):
        Field(0)


def test_mk_bitstruct():
    Msg = mk_bitstruct("Msg", [("dest", 4), ("payload", 8)])
    assert Msg.nbits == 12
    m = Msg()
    m.dest = 3
    m.payload = 0xFF
    assert m.to_bits().uint() == (3 << 8) | 0xFF


@given(st.integers(min_value=0, max_value=1), st.integers(min_value=0),
       st.integers(min_value=0))
def test_prop_pack_fields_roundtrip(type_, addr, data):
    msg = MemReqMsg()
    msg.type_ = type_
    msg.addr = addr
    msg.data = data
    again = MemReqMsg(msg.to_bits())
    assert again.type_ == type_ & 1
    assert again.addr == addr & 0xFFFFFFFF
    assert again.data == data & 0xFFFFFFFF


@given(st.integers(min_value=0, max_value=(1 << 65) - 1))
def test_prop_unpack_pack_identity(raw):
    msg = MemReqMsg(Bits(65, raw))
    assert msg.to_bits().uint() == raw
