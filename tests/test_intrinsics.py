"""Tests for concat/zext/sext in behavioral blocks — across the
interpreter, SimJIT, and the Verilog translator."""

import random

import pytest

from repro import (
    InPort,
    Model,
    OutPort,
    SimulationTool,
    TranslationTool,
    concat,
    sext,
    zext,
)
from repro.core.simjit import SimJITRTL


class Packer(Model):
    """Uses all three intrinsics in one combinational block."""

    def __init__(s):
        s.hi = InPort(8)
        s.lo = InPort(8)
        s.packed = OutPort(16)
        s.widened = OutPort(16)
        s.signed_w = OutPort(16)

        @s.combinational
        def logic():
            s.packed.value = concat(s.hi.value, s.lo.value)
            s.widened.value = zext(s.lo.value, 16)
            s.signed_w.value = sext(s.lo.value, 16)


def _drive(model, sim, hi, lo):
    model.hi.value = hi
    model.lo.value = lo
    sim.eval_combinational()
    return (int(model.packed), int(model.widened), int(model.signed_w))


def test_intrinsics_interpreted():
    model = Packer().elaborate()
    sim = SimulationTool(model)
    packed, widened, signed_w = _drive(model, sim, 0xAB, 0xCD)
    assert packed == 0xABCD
    assert widened == 0x00CD
    assert signed_w == 0xFFCD         # 0xCD sign-extends
    _, _, positive = _drive(model, sim, 0, 0x7F)
    assert positive == 0x007F


def test_intrinsics_simjit_equivalent():
    interp = Packer().elaborate()
    jit = SimJITRTL(Packer().elaborate()).specialize().elaborate()
    sim_i = SimulationTool(interp)
    sim_j = SimulationTool(jit)
    rng = random.Random(0)
    for _ in range(50):
        hi, lo = rng.getrandbits(8), rng.getrandbits(8)
        assert _drive(interp, sim_i, hi, lo) == _drive(jit, sim_j, hi, lo)


def test_intrinsics_translate_to_verilog():
    text = TranslationTool(Packer().elaborate()).verilog
    assert "{hi, lo}" in text         # concat -> Verilog concatenation
    assert "always @(*)" in text


def test_concat_of_slices():
    class SliceSwap(Model):
        def __init__(s):
            s.in_ = InPort(8)
            s.out = OutPort(8)

            @s.combinational
            def logic():
                s.out.value = concat(s.in_[0:4], s.in_[4:8])

    interp = SliceSwap().elaborate()
    sim = SimulationTool(interp)
    interp.in_.value = 0xA5
    sim.eval_combinational()
    assert int(interp.out) == 0x5A

    jit = SimJITRTL(SliceSwap().elaborate()).specialize().elaborate()
    sim_j = SimulationTool(jit)
    jit.in_.value = 0xA5
    sim_j.eval_combinational()
    assert int(jit.out) == 0x5A


def test_sext_narrowing_rejected():
    from repro.core.ast_ir import TranslationError

    class Bad(Model):
        def __init__(s):
            s.in_ = InPort(8)
            s.out = OutPort(4)

            @s.combinational
            def logic():
                s.out.value = sext(s.in_.value, 4)

    with pytest.raises(TranslationError):
        TranslationTool(Bad().elaborate())
