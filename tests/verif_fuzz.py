"""Random-seed differential-fuzz driver for the CI ``verif-fuzz`` job.

Not collected by pytest (no ``test_`` prefix): run it as a script.
Picks a fresh seed (or takes ``--seed``), runs moderate co-simulation
sweeps over the cache, mesh, and processor, and — on a mismatch —
shrinks the failure and writes a standalone pytest repro plus the
divergence report into ``--out`` so CI can upload them as artifacts.

    PYTHONPATH=src python tests/verif_fuzz.py --out verif-artifacts
"""

import argparse
import secrets
import sys
from pathlib import Path

from repro.net import NetMsg
from repro.proc import assemble
from repro.verif import (
    RNG,
    CoSimHarness,
    CoSimMismatch,
    backpressure_pattern,
    emit_repro,
    make_cache_dut,
    make_mesh_dut,
    make_proc_dut,
    mem_request_strategy,
    net_message_strategy,
    presence_pattern,
    random_minrisc_program,
    shrink_cosim_failure,
)

_CACHE_BUILD = """\
from repro.verif import CoSimHarness, make_cache_dut


def make_cosim():
    return CoSimHarness(
        [make_cache_dut("event", "rtl", sched="event"),
         make_cache_dut("static", "rtl", sched="static"),
         make_cache_dut("jit", "rtl", jit=True)],
        compare="cycle_exact")
"""

_MESH_BUILD = """\
from repro.verif import CoSimHarness, make_mesh_dut


def make_cosim():
    return CoSimHarness(
        [make_mesh_dut("event", "rtl", sched="event"),
         make_mesh_dut("static", "rtl", sched="static"),
         make_mesh_dut("jit", "rtl", jit=True)],
        compare="cycle_exact")
"""


def _cache_scenario(seed):
    rng = RNG(seed).fork("fuzz-cache")
    strat = mem_request_strategy()
    stimulus = {"req": [strat.sample(rng) for _ in range(400)]}
    run_kwargs = {
        "backpressure": backpressure_pattern("random", p=0.75,
                                             seed=seed),
        "presence": presence_pattern("random", p=0.85, seed=seed),
    }

    def make():
        return CoSimHarness(
            [make_cache_dut("event", "rtl", sched="event"),
             make_cache_dut("static", "rtl", sched="static"),
             make_cache_dut("jit", "rtl", jit=True)],
            compare="cycle_exact")

    return make, stimulus, run_kwargs, _CACHE_BUILD


def _mesh_scenario(seed):
    rng = RNG(seed).fork("fuzz-mesh")
    msg_type = NetMsg(4, 256, 16)
    stimulus = {}
    for src in range(4):
        port_rng = rng.fork(f"port{src}")
        strat = net_message_strategy(msg_type, src, 4)
        stimulus[f"in{src}"] = [strat.sample(port_rng)
                                for _ in range(100)]
    run_kwargs = {
        "backpressure": backpressure_pattern("bursty", burst=3),
        "presence": presence_pattern("random", p=0.8, seed=seed),
    }

    def make():
        return CoSimHarness(
            [make_mesh_dut("event", "rtl", sched="event"),
             make_mesh_dut("static", "rtl", sched="static"),
             make_mesh_dut("jit", "rtl", jit=True)],
            compare="cycle_exact")

    return make, stimulus, run_kwargs, _MESH_BUILD


def _proc_scenario(seed):
    rng = RNG(seed).fork("fuzz-proc")
    words = assemble(random_minrisc_program(
        rng, length=200, store_frac=0.3))

    def make():
        return CoSimHarness(
            [make_proc_dut(lvl, lvl, words)
             for lvl in ("fl", "cl", "rtl")],
            compare="cycle_tolerant")

    # Self-running: no stimulus to shrink; a repro is the seed itself.
    return make, {}, {"max_cycles": 100_000}, None


SCENARIOS = {
    "cache": _cache_scenario,
    "mesh": _mesh_scenario,
    "proc": _proc_scenario,
}


def run_one(name, seed, out_dir):
    make, stimulus, run_kwargs, build_src = SCENARIOS[name](seed)
    try:
        result = make().run(stimulus, **run_kwargs)
    except CoSimMismatch as exc:
        out_dir.mkdir(parents=True, exist_ok=True)
        report = out_dir / f"divergence_{name}_seed{seed}.txt"
        report.write_text(f"seed: {seed}\nscenario: {name}\n\n{exc}\n")
        print(f"[verif-fuzz] {name}: MISMATCH (seed {seed}), "
              f"report -> {report}")
        if build_src is not None and stimulus:
            shrunk, mismatch = shrink_cosim_failure(
                make, stimulus, run_kwargs, max_runs=200)
            repro = out_dir / f"repro_{name}_seed{seed}.py"
            emit_repro(repro, build_src, shrunk, run_kwargs,
                       note=f"Found by verif_fuzz seed {seed}.",
                       mismatch=mismatch)
            print(f"[verif-fuzz] shrunk to "
                  f"{sum(len(v) for v in shrunk.values())} "
                  f"transactions -> {repro}")
        return False
    ntxn = result.ntransactions()
    print(f"[verif-fuzz] {name}: ok ({ntxn} transactions)")
    print(result.coverage.report())
    return True


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=None,
                        help="seed (default: random)")
    parser.add_argument("--out", default="verif-artifacts",
                        help="directory for failure artifacts")
    parser.add_argument("--scenario", choices=sorted(SCENARIOS),
                        action="append",
                        help="run a subset (default: all)")
    args = parser.parse_args(argv)
    seed = args.seed if args.seed is not None else secrets.randbits(32)
    print(f"[verif-fuzz] seed = {seed}")
    out_dir = Path(args.out)
    names = args.scenario or sorted(SCENARIOS)
    ok = all([run_one(name, seed, out_dir) for name in names])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
