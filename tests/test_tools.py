"""Tests for the user-level tools: VCD, linter, visualizer."""

import pytest

from repro import InPort, Model, OutPort, SimulationTool, Wire
from repro.components import Register
from repro.net import MeshNetworkStructural, RouterRTL
from repro.tools import (
    VCDWriter,
    connectivity_report,
    design_stats,
    hierarchy_tree,
    lint,
)
from tests.test_core_smoke import MuxReg


# -- VCD ----------------------------------------------------------------------


def test_vcd_basic_structure(tmp_path):
    path = tmp_path / "trace.vcd"
    model = Register(8).elaborate()
    with VCDWriter(str(path)) as vcd:
        sim = SimulationTool(model, vcd=vcd)
        sim.reset()
        model.in_.value = 0xAB
        sim.cycle()
        model.in_.value = 0xCD
        sim.cycle()
    text = path.read_text()
    assert "$timescale" in text
    assert "$var wire 8" in text
    assert "$enddefinitions" in text
    assert "b10101011" in text


def test_vcd_only_changes_recorded(tmp_path):
    path = tmp_path / "trace.vcd"
    model = Register(8).elaborate()
    with VCDWriter(str(path)) as vcd:
        sim = SimulationTool(model, vcd=vcd)
        sim.reset()
        model.in_.value = 1
        sim.run(5)          # value stable after first cycle
    text = path.read_text()
    # The 'out' signal transitions once to 1; later samples are quiet.
    lines = [l for l in text.splitlines() if l.startswith("b1 ")]
    assert len(lines) <= len(set(lines)) + 1


def test_vcd_hierarchical_scopes(tmp_path):
    path = tmp_path / "trace.vcd"
    model = MuxReg(8, 4).elaborate()
    with VCDWriter(str(path)) as vcd:
        sim = SimulationTool(model, vcd=vcd)
        sim.cycle()
    text = path.read_text()
    assert text.count("$scope module") == 3     # top + reg_ + mux
    assert text.count("$upscope") == 3


# -- linter -------------------------------------------------------------------------


def test_lint_clean_design():
    warnings = lint(MuxReg(8, 4).elaborate())
    assert warnings == []


def test_lint_undriven_output():
    class Bad(Model):
        def __init__(s):
            s.out = OutPort(8)

    warnings = lint(Bad().elaborate())
    assert any(w.check == "undriven-output" for w in warnings)


def test_lint_multiple_drivers():
    class Bad(Model):
        def __init__(s):
            s.a = InPort(8)
            s.out = OutPort(8)

            @s.combinational
            def one():
                s.out.value = s.a.value

            @s.combinational
            def two():
                s.out.value = s.a + 1

    warnings = lint(Bad().elaborate())
    assert any(w.check == "multiple-drivers" for w in warnings)


def test_lint_warning_str():
    class Bad(Model):
        def __init__(s):
            s.out = OutPort(8)

    warning = lint(Bad().elaborate())[0]
    assert "undriven-output" in str(warning)


# -- visualization ------------------------------------------------------------------


def test_hierarchy_tree():
    tree = hierarchy_tree(MuxReg(8, 4).elaborate())
    assert "MuxReg" in tree
    assert "Register" in tree
    assert "Mux" in tree
    assert "level=rtl" in tree


def test_design_stats():
    stats = design_stats(
        MeshNetworkStructural(RouterRTL, 4, 64, 16, 2).elaborate())
    assert stats["models"] == 1 + 4 + 4 * 5      # mesh + routers + queues
    assert stats["tick_blocks_rtl"] > 0
    assert stats["nets"] > 0
    assert stats["state_bits"] > 0


def test_connectivity_report():
    report = connectivity_report(MuxReg(8, 4).elaborate())
    assert "sel" in report
    assert "mux.sel" in report


def test_connectivity_report_marks_unconnected():
    class Dangling(Model):
        def __init__(s):
            s.in_ = InPort(4)
            s.out = OutPort(4)
            s.connect(s.in_, s.out)
            s.nc = InPort(1)

    report = connectivity_report(Dangling().elaborate())
    assert "(unconnected)" in report
