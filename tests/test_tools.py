"""Tests for the user-level tools: VCD, linter, visualizer."""

import pytest

from repro import InPort, Model, OutPort, SimulationTool, Wire
from repro.components import Register
from repro.net import MeshNetworkStructural, RouterRTL
from repro.tools import (
    VCDWriter,
    connectivity_report,
    design_stats,
    hierarchy_tree,
    lint,
)
from tests.test_core_smoke import MuxReg


# -- VCD ----------------------------------------------------------------------


def test_vcd_basic_structure(tmp_path):
    path = tmp_path / "trace.vcd"
    model = Register(8).elaborate()
    with VCDWriter(str(path)) as vcd:
        sim = SimulationTool(model, vcd=vcd)
        sim.reset()
        model.in_.value = 0xAB
        sim.cycle()
        model.in_.value = 0xCD
        sim.cycle()
    text = path.read_text()
    assert "$timescale" in text
    assert "$var wire 8" in text
    assert "$enddefinitions" in text
    assert "b10101011" in text


def test_vcd_only_changes_recorded(tmp_path):
    path = tmp_path / "trace.vcd"
    model = Register(8).elaborate()
    with VCDWriter(str(path)) as vcd:
        sim = SimulationTool(model, vcd=vcd)
        sim.reset()
        model.in_.value = 1
        sim.run(5)          # value stable after first cycle
    text = path.read_text()
    # The 'out' signal transitions once to 1; later samples are quiet.
    lines = [l for l in text.splitlines() if l.startswith("b1 ")]
    assert len(lines) <= len(set(lines)) + 1


def test_vcd_hierarchical_scopes(tmp_path):
    path = tmp_path / "trace.vcd"
    model = MuxReg(8, 4).elaborate()
    with VCDWriter(str(path)) as vcd:
        sim = SimulationTool(model, vcd=vcd)
        sim.cycle()
    text = path.read_text()
    assert text.count("$scope module") == 3     # top + reg_ + mux
    assert text.count("$upscope") == 3


# -- linter -------------------------------------------------------------------------


def test_lint_clean_design():
    warnings = lint(MuxReg(8, 4).elaborate())
    assert warnings == []


def test_lint_undriven_output():
    class Bad(Model):
        def __init__(s):
            s.out = OutPort(8)

    warnings = lint(Bad().elaborate())
    assert any(w.check == "undriven-output" for w in warnings)


def test_lint_multiple_drivers():
    class Bad(Model):
        def __init__(s):
            s.a = InPort(8)
            s.out = OutPort(8)

            @s.combinational
            def one():
                s.out.value = s.a.value

            @s.combinational
            def two():
                s.out.value = s.a + 1

    warnings = lint(Bad().elaborate())
    assert any(w.check == "multiple-drivers" for w in warnings)


def test_lint_warning_str():
    class Bad(Model):
        def __init__(s):
            s.out = OutPort(8)

    warning = lint(Bad().elaborate())[0]
    assert "undriven-output" in str(warning)


# -- visualization ------------------------------------------------------------------


def test_hierarchy_tree():
    tree = hierarchy_tree(MuxReg(8, 4).elaborate())
    assert "MuxReg" in tree
    assert "Register" in tree
    assert "Mux" in tree
    assert "level=rtl" in tree


def test_design_stats():
    stats = design_stats(
        MeshNetworkStructural(RouterRTL, 4, 64, 16, 2).elaborate())
    assert stats["models"] == 1 + 4 + 4 * 5      # mesh + routers + queues
    assert stats["tick_blocks_rtl"] > 0
    assert stats["nets"] > 0
    assert stats["state_bits"] > 0


def test_connectivity_report():
    report = connectivity_report(MuxReg(8, 4).elaborate())
    assert "sel" in report
    assert "mux.sel" in report


def test_connectivity_report_marks_unconnected():
    class Dangling(Model):
        def __init__(s):
            s.in_ = InPort(4)
            s.out = OutPort(4)
            s.connect(s.in_, s.out)
            s.nc = InPort(1)

    report = connectivity_report(Dangling().elaborate())
    assert "(unconnected)" in report


# -- never-observed sinks -----------------------------------------------------


def test_lint_never_observed_sink():
    class Dead(Model):
        def __init__(s):
            s.in_ = InPort(8)
            s.out = OutPort(8)
            s.debug = Wire(8)            # written, never read

            @s.combinational
            def comb():
                s.out.value = s.in_.value
                s.debug.value = s.in_ + 1

    warnings = lint(Dead().elaborate())
    hits = [w for w in warnings if w.check == "never-observed-sink"]
    assert len(hits) == 1
    assert "'debug'" in hits[0].message
    assert "never" in hits[0].message


def test_lint_read_wire_is_not_a_sink():
    class Chained(Model):
        def __init__(s):
            s.in_ = InPort(8)
            s.out = OutPort(8)
            s.mid = Wire(8)

            @s.combinational
            def stage1():
                s.mid.value = s.in_ + 1

            @s.combinational
            def stage2():
                s.out.value = s.mid.value

    warnings = lint(Chained().elaborate())
    assert not [w for w in warnings
                if w.check == "never-observed-sink"]


def test_lint_observe_registration_clears_sink():
    class Instrumented(Model):
        def __init__(s):
            s.in_ = InPort(8)
            s.out = OutPort(8)
            s.debug = Wire(8)
            s.observe(s.debug)           # observatory consumer

            @s.combinational
            def comb():
                s.out.value = s.in_.value
                s.debug.value = s.in_ + 1

    warnings = lint(Instrumented().elaborate())
    assert not [w for w in warnings
                if w.check == "never-observed-sink"]


def test_lint_connected_wire_is_not_a_sink():
    class Bridged(Model):
        def __init__(s):
            s.in_ = InPort(8)
            s.out = OutPort(8)
            s.mid = Wire(8)
            s.connect(s.mid, s.out)      # net reaches a port

            @s.combinational
            def comb():
                s.mid.value = s.in_ + 1

    warnings = lint(Bridged().elaborate())
    assert not [w for w in warnings
                if w.check == "never-observed-sink"]


def test_lint_wire_list_sinks_flagged_once_per_net():
    class DeadList(Model):
        def __init__(s):
            s.in_ = InPort(8)
            s.out = OutPort(8)
            s.scratch = [Wire(8) for _ in range(3)]

            @s.combinational
            def comb():
                s.out.value = s.in_.value
                for i in range(3):
                    s.scratch[i].value = s.in_ + i

    warnings = lint(DeadList().elaborate())
    hits = [w for w in warnings if w.check == "never-observed-sink"]
    assert len(hits) == 3


def test_lint_opaque_fl_model_is_conservative():
    class Opaque(Model):
        def __init__(s):
            s.in_ = InPort(8)
            s.out = OutPort(8)
            s.maybe = Wire(8)

            @s.combinational
            def comb():
                s.out.value = s.in_.value
                s.maybe.value = s.in_ + 1

            @s.tick_fl
            def fl():
                # Untranslatable: dynamic attribute access defeats the
                # read-set analysis, so the model must be treated as
                # possibly reading everything.
                getattr(s, "maybe")

    warnings = lint(Opaque().elaborate())
    assert not [w for w in warnings
                if w.check == "never-observed-sink"]


def test_lint_cache_rtl_has_no_sinks():
    """Regression: CacheRTL's debug-only req_type latch is covered by
    its s.observe(...) registration."""
    from repro.mem import CacheRTL, MemMsg

    msg = MemMsg()
    cache = CacheRTL(msg, msg, nlines=8, assoc=2)
    warnings = lint(cache.elaborate())
    assert not [w for w in warnings
                if w.check == "never-observed-sink"]
