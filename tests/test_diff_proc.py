"""Differential sweeps for the MinRISC processor.

Processors are self-running DUTs: no channels are driven; the
architectural output is the passive tap on the data-memory *store*
stream plus the final scratch-window memory image.  FL / CL / RTL
refinements must issue the same stores in the same order
(cycle-tolerant); the same RTL netlist on different simulator
substrates must be bit-and-cycle identical (cycle-exact).
"""

from repro.proc import assemble
from repro.verif import RNG, CoSimHarness
from repro.verif.duts import make_proc_dut, random_minrisc_program

# Store-heavy instruction mix so each program yields a long tapped
# stream to diff.
_MIX = {"store_frac": 0.40, "load_frac": 0.10, "branch_frac": 0.05}
N_TXNS = 1000


def _program(seed, length=400):
    rng = RNG(seed).fork("proc-prog")
    return assemble(random_minrisc_program(rng, length=length, **_MIX))


def test_proc_levels_cycle_tolerant():
    """FL / CL / RTL processors retire identical store streams and
    final memory over random programs, >= 1000 stores total."""
    total = 0
    seed = 0
    while total < N_TXNS:
        words = _program(seed)
        harness = CoSimHarness(
            [make_proc_dut(lvl, lvl, words)
             for lvl in ("fl", "cl", "rtl")],
            compare="cycle_tolerant")
        res = harness.run({}, max_cycles=100_000)
        assert res.ntransactions("stores") > 0
        total += res.ntransactions("stores")
        seed += 1
    assert total >= N_TXNS


def test_proc_substrates_cycle_exact():
    """RTL processor: event-driven == static-scheduled == SimJIT,
    store for store and cycle for cycle."""
    total = 0
    seed = 100
    while total < N_TXNS:
        words = _program(seed)
        harness = CoSimHarness(
            [make_proc_dut("event", "rtl", words, sched="event"),
             make_proc_dut("static", "rtl", words, sched="static"),
             make_proc_dut("jit", "rtl", words, jit=True)],
            compare="cycle_exact")
        res = harness.run({}, max_cycles=100_000)
        assert len(set(res.ncycles.values())) == 1
        total += res.ntransactions("stores")
        seed += 1
    assert total >= N_TXNS


def test_proc_latency_insensitive():
    """The same RTL processor behind memories of different latencies
    still retires the same store stream and final state — the
    latency-insensitive interface property the whole FL/CL/RTL
    refinement argument rests on."""
    words = _program(42, length=200)
    harness = CoSimHarness(
        [make_proc_dut(f"lat{lat}", "rtl", words, mem_latency=lat)
         for lat in (1, 2, 5)],
        compare="cycle_tolerant")
    res = harness.run({}, max_cycles=100_000)
    assert res.ntransactions("stores") > 0
    assert len(set(res.final_states.values())) == 1
    # Latency actually differed, so the agreement is non-trivial.
    assert len(set(res.ncycles.values())) == 3
