"""Tests for the memcpy (DMA) accelerator at all three levels."""

import pytest

from repro.core import Model, SimulationTool
from repro.accel import MemcpyCL, MemcpyFL, MemcpyRTL, XcelMsg, XcelReqMsg
from repro.accel.memcpy_fl import CTRL_DST, CTRL_GO, CTRL_SIZE, CTRL_SRC
from repro.mem import MemMsg, TestMemory

ACCELS = [MemcpyFL, MemcpyCL, MemcpyRTL]


class _Harness(Model):
    def __init__(s, accel_cls, mem_latency=1):
        s.accel = accel_cls(MemMsg(), XcelMsg())
        s.mem = TestMemory(nports=1, latency=mem_latency, size=1 << 16)
        s.connect(s.accel.mem_ifc.req, s.mem.ports[0].req)
        s.connect(s.accel.mem_ifc.resp, s.mem.ports[0].resp)


class _Driver:
    def __init__(self, sim, port, max_cycles=5000):
        self.sim = sim
        self.port = port
        self.max_cycles = max_cycles

    def send(self, ctrl, data):
        port, sim = self.port, self.sim
        port.req_msg.value = XcelReqMsg.mk(ctrl, data)
        port.req_val.value = 1
        for _ in range(self.max_cycles):
            accepted = int(port.req_val) and int(port.req_rdy)
            sim.cycle()
            if accepted:
                port.req_val.value = 0
                return
        raise AssertionError("request never accepted")

    def go(self):
        self.send(CTRL_GO, 0)
        port, sim = self.port, self.sim
        port.resp_rdy.value = 1
        for _ in range(self.max_cycles):
            if int(port.resp_val) and int(port.resp_rdy):
                result = int(port.resp_msg.value.data)
                sim.cycle()
                port.resp_rdy.value = 0
                return result
            sim.cycle()
        raise AssertionError("no response")


def _copy(accel_cls, words, src=0x1000, dst=0x3000, mem_latency=1):
    harness = _Harness(accel_cls, mem_latency).elaborate()
    sim = SimulationTool(harness)
    sim.reset()
    harness.mem.load(src, words)
    driver = _Driver(sim, harness.accel.cpu_ifc)
    driver.send(CTRL_SIZE, len(words))
    driver.send(CTRL_SRC, src)
    driver.send(CTRL_DST, dst)
    copied = driver.go()
    got = [harness.mem.read_word(dst + 4 * i) for i in range(len(words))]
    return copied, got, sim.ncycles


@pytest.mark.parametrize("accel_cls", ACCELS)
def test_memcpy_basic(accel_cls):
    words = [10, 20, 30, 40, 50]
    copied, got, _ = _copy(accel_cls, words)
    assert copied == 5
    assert got == words


@pytest.mark.parametrize("accel_cls", ACCELS)
def test_memcpy_slow_memory(accel_cls):
    words = list(range(1, 9))
    _, got, _ = _copy(accel_cls, words, mem_latency=4)
    assert got == words


@pytest.mark.parametrize("accel_cls", ACCELS)
def test_memcpy_back_to_back(accel_cls):
    harness = _Harness(accel_cls).elaborate()
    sim = SimulationTool(harness)
    sim.reset()
    harness.mem.load(0x1000, [7, 8])
    harness.mem.load(0x2000, [1, 2, 3])
    driver = _Driver(sim, harness.accel.cpu_ifc)
    driver.send(CTRL_SIZE, 2)
    driver.send(CTRL_SRC, 0x1000)
    driver.send(CTRL_DST, 0x4000)
    assert driver.go() == 2
    driver.send(CTRL_SIZE, 3)
    driver.send(CTRL_SRC, 0x2000)
    driver.send(CTRL_DST, 0x5000)
    assert driver.go() == 3
    assert harness.mem.read_word(0x4004) == 8
    assert harness.mem.read_word(0x5008) == 3


def test_cl_pipelines_better_than_rtl():
    """The CL engine overlaps reads and writes; the one-word-in-flight
    RTL engine cannot."""
    words = list(range(32))
    _, _, cl_cycles = _copy(MemcpyCL, words)
    _, _, rtl_cycles = _copy(MemcpyRTL, words)
    assert cl_cycles < rtl_cycles


def test_rtl_memcpy_simjit_equivalent():
    from tests.test_simjit import assert_cycle_exact
    assert_cycle_exact(lambda: MemcpyRTL(MemMsg(), XcelMsg()),
                       ncycles=300)


def test_rtl_memcpy_translates():
    from repro import TranslationTool
    from repro.tools import lint_verilog
    text = TranslationTool(
        MemcpyRTL(MemMsg(), XcelMsg()).elaborate()).verilog
    assert lint_verilog(text) == []
